package machine

import (
	"errors"
	"testing"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// nestedProgram builds outer -> middle -> inner, where inner adds one
// to its argument and each level passes the value through.
func nestedProgram() *obj.File {
	inner := buildFunc("inner", 1, 2, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 1, Imm: 1},
		{Op: obj.OpBin, Dst: 1, A: 0, B: 1, Tok: int(cmini.PLUS)},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	middle := buildFunc("middle", 1, 2, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 1, Sym: "inner", Args: []obj.Reg{0}},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	outer := buildFunc("outer", 1, 2, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 1, Sym: "middle", Args: []obj.Reg{0}},
		{Op: obj.OpRet, A: 1, HasVal: true},
	})
	return fileWith(inner, middle, outer)
}

// TestPostCallSequence pins down the hook's contract: completion
// (post-) order, entry depths, and strictly nested cycle intervals.
func TestPostCallSequence(t *testing.T) {
	m := loadFile(t, nestedProgram())
	var got []CallInfo
	m.PostCall = func(ci CallInfo) { got = append(got, ci) }

	v, err := m.Run("outer", 41)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Fatalf("outer(41) = %d, want 42", v)
	}
	wantFns := []string{"inner", "middle", "outer"}
	wantDepths := []int{2, 1, 0}
	if len(got) != len(wantFns) {
		t.Fatalf("got %d CallInfos, want %d: %+v", len(got), len(wantFns), got)
	}
	for i, ci := range got {
		if ci.Fn != wantFns[i] || ci.Depth != wantDepths[i] {
			t.Errorf("call %d = %s@%d, want %s@%d", i, ci.Fn, ci.Depth, wantFns[i], wantDepths[i])
		}
		if ci.Err != nil {
			t.Errorf("call %d: unexpected err %v", i, ci.Err)
		}
	}
	// Each callee's [Start, Start+Cycles] interval nests inside its
	// caller's, and the caller consumed strictly more fuel.
	for i := 0; i+1 < len(got); i++ {
		in, out := got[i], got[i+1]
		if in.Start < out.Start || in.Start+in.Cycles > out.Start+out.Cycles {
			t.Errorf("interval %s [%d,+%d] not inside %s [%d,+%d]",
				in.Fn, in.Start, in.Cycles, out.Fn, out.Start, out.Cycles)
		}
		if in.Cycles >= out.Cycles {
			t.Errorf("%s consumed %d cycles, caller %s only %d", in.Fn, in.Cycles, out.Fn, out.Cycles)
		}
	}
}

// TestPostCallTrapPropagation: a trap raised in the innermost frame is
// delivered to the hook at every level as the same error value, so an
// observer can count it exactly once.
func TestPostCallTrapPropagation(t *testing.T) {
	inner := buildFunc("inner", 0, 1, 0, []obj.Instr{
		{Op: obj.OpConst, Dst: 0, Imm: 3},
		{Op: obj.OpLoad, Dst: 0, A: 0}, // address 3 is inside the NULL guard
	})
	outer := buildFunc("outer", 0, 1, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 0, Sym: "inner"},
		{Op: obj.OpRet, A: 0, HasVal: true},
	})
	m := loadFile(t, fileWith(inner, outer))
	var errs []error
	m.PostCall = func(ci CallInfo) { errs = append(errs, ci.Err) }
	_, err := m.Run("outer")
	var trap *Trap
	if !errors.As(err, &trap) || trap.Kind != TrapBadAddress {
		t.Fatalf("err = %v, want bad-address trap", err)
	}
	if len(errs) != 2 {
		t.Fatalf("hook fired %d times, want 2", len(errs))
	}
	if errs[0] != err || errs[1] != err {
		t.Errorf("propagated errors differ: %v / %v vs %v", errs[0], errs[1], err)
	}
}

// TestPostCallSkipsBuiltins: builtins are charged to the caller and do
// not fire the hook.
func TestPostCallSkipsBuiltins(t *testing.T) {
	f := buildFunc("f", 0, 1, 0, []obj.Instr{
		{Op: obj.OpCall, Dst: 0, Sym: "__dev"},
		{Op: obj.OpRet, A: 0, HasVal: true},
	})
	m := loadFile(t, fileWith(f))
	m.RegisterBuiltin("__dev", func(_ *M, _ []int64) (int64, error) { return 7, nil })
	var fns []string
	m.PostCall = func(ci CallInfo) { fns = append(fns, ci.Fn) }
	v, err := m.Run("f")
	if err != nil || v != 7 {
		t.Fatalf("f() = %d, %v", v, err)
	}
	if len(fns) != 1 || fns[0] != "f" {
		t.Errorf("hook saw %v, want just [f]", fns)
	}
}

// TestCallPathZeroAllocs: the no-fault call path must not allocate —
// neither bare, nor with an interposition redirect installed, nor with
// a (non-allocating) PostCall hook attached. This is the property the
// supervision and observability layers rely on to stay off the heap on
// every supervised router call.
func TestCallPathZeroAllocs(t *testing.T) {
	m := loadFile(t, nestedProgram())
	run := func() {
		if _, err := m.Run("outer", 1); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm the frame arenas
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("bare call path: %.1f allocs/op, want 0", n)
	}

	// Redirect middle -> inner (skip a hop): the redirect table is now
	// consulted on every dispatch.
	if err := m.Interpose("middle", "inner"); err != nil {
		t.Fatal(err)
	}
	run()
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("interposed call path: %.1f allocs/op, want 0", n)
	}
	m.Unpose("middle")

	var calls, cycles int64
	m.PostCall = func(ci CallInfo) {
		if ci.Depth == 0 {
			calls++
			cycles += ci.Cycles
		}
	}
	run()
	if n := testing.AllocsPerRun(200, run); n != 0 {
		t.Errorf("hooked call path: %.1f allocs/op, want 0", n)
	}
	if calls == 0 || cycles == 0 {
		t.Error("hook never saw a top-level call")
	}
}

// BenchmarkCallPostCallNil measures the per-call cost of the detached
// hook (the nil-check fast path) — compare with
// BenchmarkCallPostCallAttached for the instrumentation overhead.
func BenchmarkCallPostCallNil(b *testing.B) {
	benchCalls(b, false)
}

func BenchmarkCallPostCallAttached(b *testing.B) {
	benchCalls(b, true)
}

func benchCalls(b *testing.B, hook bool) {
	img, err := Load(nestedProgram(), DefaultCosts())
	if err != nil {
		b.Fatal(err)
	}
	m := New(img)
	var sink int64
	if hook {
		m.PostCall = func(ci CallInfo) { sink += ci.Cycles }
	}
	if _, err := m.Run("outer", 1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Run("outer", 1); err != nil {
			b.Fatal(err)
		}
	}
	_ = sink
}
