package machine

import (
	"testing"

	"knit/internal/cmini"
	"knit/internal/obj"
)

// fuzzTemplate builds one of four dynamic-module shapes with known
// inter-module dependencies, so the fuzzer can explore load/unload
// orders while a simple model predicts which operations must succeed:
//
//	t0: standalone (fn_0 -> 0, data g_0)
//	t1: takes the address of t0's fn_0 -> loads only while t0 is live,
//	    and pins t0 (fn_1 -> 1)
//	t2: calls fn_1 -> always loads, pins t1 while both live; fn_2 -> 2
//	    when t1 is live, traps otherwise
//	t3: standalone with a string literal and InitString data (fn_3 -> 3)
func fuzzTemplate(t int) *obj.File {
	name := fuzzModName(t)
	f := obj.NewFile(name)
	addFn := func(fn *obj.Func) {
		f.Funcs[fn.Name] = fn
		f.AddSym(&obj.Symbol{Name: fn.Name, Kind: obj.SymFunc, Defined: true})
	}
	switch t {
	case 0:
		addFn(&obj.Func{Name: "fn_0", NRegs: 2, Code: []obj.Instr{
			{Op: obj.OpConst, Dst: 1, Imm: 0},
			{Op: obj.OpRet, A: 1, HasVal: true},
		}})
		f.Datas["g_0"] = &obj.Data{Name: "g_0", Size: 1,
			Init: []obj.DataInit{{Kind: obj.InitConst, Val: 100}}}
		f.AddSym(&obj.Symbol{Name: "g_0", Kind: obj.SymData, Defined: true})
	case 1:
		addFn(&obj.Func{Name: "fn_1", NRegs: 2, Code: []obj.Instr{
			{Op: obj.OpAddrGlobal, Dst: 1, Sym: "fn_0", A: obj.NoReg},
			{Op: obj.OpConst, Dst: 1, Imm: 1},
			{Op: obj.OpRet, A: 1, HasVal: true},
		}})
		f.AddSym(&obj.Symbol{Name: "fn_0", Kind: obj.SymFunc, Defined: false})
	case 2:
		addFn(&obj.Func{Name: "fn_2", NRegs: 3, Code: []obj.Instr{
			{Op: obj.OpCall, Dst: 1, Sym: "fn_1", A: obj.NoReg},
			{Op: obj.OpConst, Dst: 2, Imm: 1},
			{Op: obj.OpBin, Dst: 1, A: 1, B: 2, Tok: int(cmini.PLUS)},
			{Op: obj.OpRet, A: 1, HasVal: true},
		}})
		f.AddSym(&obj.Symbol{Name: "fn_1", Kind: obj.SymFunc, Defined: false})
	case 3:
		f.Strings = []string{"x"} // 'x' == 120
		addFn(&obj.Func{Name: "fn_3", NRegs: 3, Code: []obj.Instr{
			{Op: obj.OpAddrString, Dst: 1, Imm: 0, A: obj.NoReg},
			{Op: obj.OpLoad, Dst: 1, A: 1},
			{Op: obj.OpConst, Dst: 2, Imm: 117},
			{Op: obj.OpBin, Dst: 1, A: 1, B: 2, Tok: int(cmini.MINUS)},
			{Op: obj.OpRet, A: 1, HasVal: true},
		}})
		f.Datas["g_3"] = &obj.Data{Name: "g_3", Size: 1,
			Init: []obj.DataInit{{Kind: obj.InitString, Offset: 0, Index: 0}}}
		f.AddSym(&obj.Symbol{Name: "g_3", Kind: obj.SymData, Defined: true})
	}
	return f
}

func fuzzModName(t int) string {
	return [...]string{"tmod0", "tmod1", "tmod2", "tmod3"}[t]
}

// fuzzOp decodes one fuzz byte: an operation and a template argument.
func fuzzOp(b byte) (op int, tpl int) {
	return int(b & 7), int(b>>3) % 4
}

// FuzzDynamicLifecycle drives random load/unload/snapshot/restore
// sequences against a model that predicts which must succeed, and runs
// the machine's dynamic-table invariant checker plus every live (and
// dead) entry point after each step. It is the harness for the
// guarantee that no sequence of lifecycle operations leaves a dangling
// symbol-table entry or an unlaunchable machine.
func FuzzDynamicLifecycle(f *testing.F) {
	enc := func(op, tpl int) byte { return byte(op | tpl<<3) }
	// Seeds: ordered loads and unloads, dependency violations, reload
	// after unload, snapshot/restore around loads.
	f.Add([]byte{enc(0, 0), enc(0, 1), enc(0, 2), enc(0, 3)})
	f.Add([]byte{enc(0, 0), enc(0, 1), enc(3, 0), enc(3, 1), enc(3, 0)})
	f.Add([]byte{enc(0, 1), enc(0, 0), enc(0, 1), enc(3, 1), enc(0, 1)})
	f.Add([]byte{enc(0, 0), enc(6, 0), enc(0, 1), enc(0, 2), enc(7, 0), enc(0, 1)})
	f.Add([]byte{enc(0, 2), enc(0, 0), enc(0, 1), enc(3, 2), enc(6, 0), enc(3, 1), enc(7, 0)})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 64 {
			data = data[:64]
		}
		m := loadFile(t, fileWith(buildFunc("base_id", 1, 2, 0, []obj.Instr{
			{Op: obj.OpRet, A: 0, HasVal: true},
		})))

		live := [4]bool{}
		var snap *Snapshot
		var snapLive [4]bool

		check := func(step int) {
			t.Helper()
			if err := m.CheckDynInvariants(); err != nil {
				t.Fatalf("step %d: invariants violated: %v", step, err)
			}
			for tpl := 0; tpl < 4; tpl++ {
				fn := [...]string{"fn_0", "fn_1", "fn_2", "fn_3"}[tpl]
				v, err := m.Run(fn)
				if !live[tpl] {
					if err == nil {
						t.Fatalf("step %d: %s runnable but %s is not loaded", step, fn, fuzzModName(tpl))
					}
					continue
				}
				if tpl == 2 && !live[1] {
					// fn_2 calls into the unloaded t1: must trap, not
					// crash or resolve stale state.
					if err == nil {
						t.Fatalf("step %d: fn_2 resolved a call into unloaded tmod1", step)
					}
					continue
				}
				if err != nil {
					t.Fatalf("step %d: %s: %v", step, fn, err)
				}
				if v != int64(tpl) {
					t.Fatalf("step %d: %s = %d, want %d", step, fn, v, tpl)
				}
			}
		}

		check(-1)
		for i, b := range data {
			op, tpl := fuzzOp(b)
			switch {
			case op <= 2: // load
				err := m.LoadDynamicAs(fuzzModName(tpl), "fuzz/"+fuzzModName(tpl), fuzzTemplate(tpl))
				wantOK := !live[tpl] && (tpl != 1 || live[0])
				if wantOK != (err == nil) {
					t.Fatalf("step %d: load %s: err=%v, model wanted ok=%v (live=%v)",
						i, fuzzModName(tpl), err, wantOK, live)
				}
				if err == nil {
					live[tpl] = true
				}
			case op <= 5: // unload
				err := m.UnloadDynamic(fuzzModName(tpl))
				wantOK := live[tpl] &&
					!(tpl == 0 && live[1]) && // t1 pins t0
					!(tpl == 1 && live[2]) // t2 pins t1
				if wantOK != (err == nil) {
					t.Fatalf("step %d: unload %s: err=%v, model wanted ok=%v (live=%v)",
						i, fuzzModName(tpl), err, wantOK, live)
				}
				if err == nil {
					live[tpl] = false
				}
			case op == 6: // snapshot
				snap, snapLive = m.Snapshot(), live
			default: // restore
				if snap != nil {
					m.Restore(snap)
					live = snapLive
				}
			}
			check(i)
		}
	})
}
