package clack

import (
	"fmt"
	"sort"
	"strings"

	"knit/internal/knit/link"
)

// This file implements Clack's configuration front end: a parser for the
// Click router language —
//
//	fd0 :: FromDevice(0);
//	cl0 :: Classifier;
//	fd0 -> cl0;
//	cl0[1] -> ar0;
//
// — and a compiler from that graph to a Knit compound unit, showing (as
// the paper does in §5.2) that Knit can express both Click's component
// implementations and its linking language.

// elemType describes one element class: its Knit unit, output ports (in
// the order of the unit's Push imports), and whether it takes a device
// argument, exports a Step source, or exports a Stat bundle.
type elemType struct {
	unit     string
	outs     []string // names of Push output ports, in import order
	needsDev bool
	isSource bool // exports Step instead of Push
	hasStat  bool
	noInput  bool // exports no Push input (only sources)
}

var elemTypes = map[string]elemType{
	"FromDevice":    {unit: "FromDevice", outs: []string{"out"}, needsDev: true, isSource: true, noInput: true},
	"Classifier":    {unit: "Classifier", outs: []string{"ip", "arp", "other"}},
	"ARPResponder":  {unit: "ARPResponder", outs: []string{"out"}},
	"CheckIPHeader": {unit: "CheckIPHeader", outs: []string{"out", "bad"}},
	"LookupIPRoute": {unit: "LookupIPRoute", outs: []string{"port0", "port1"}},
	"DecIPTTL":      {unit: "DecIPTTL", outs: []string{"out", "expired"}},
	"FixIPChecksum": {unit: "FixIPChecksum", outs: []string{"out"}},
	"EthEncap":      {unit: "EthEncap", outs: []string{"out"}, needsDev: true},
	"Queue":         {unit: "Queue", outs: []string{"out"}},
	"Counter":       {unit: "Counter", outs: []string{"out"}, hasStat: true},
	"ToDevice":      {unit: "ToDevice", outs: nil, needsDev: true},
	"Discard":       {unit: "Discard", outs: nil},
}

// Element is one declared element instance.
type Element struct {
	Name string
	Type string
	Arg  int // device number for FromDevice/EthEncap/ToDevice
	// conns[i] = name of the element connected to output port i.
	conns []string
}

// NumPorts returns the element's output port count.
func (e *Element) NumPorts() int { return len(e.conns) }

// Conn returns the name of the element connected to output port i.
func (e *Element) Conn(i int) string { return e.conns[i] }

// ByName returns the named element, or nil.
func (g *Graph) ByName(name string) *Element { return g.byName[name] }

// IsSourceType reports whether an element class is a packet source
// (exports a Step bundle rather than a Push input).
func IsSourceType(typ string) bool { return elemTypes[typ].isSource }

// NeedsDev reports whether an element class takes a device argument.
func NeedsDev(typ string) bool { return elemTypes[typ].needsDev }

// Graph is a parsed Click configuration.
type Graph struct {
	Elements []*Element
	byName   map[string]*Element
}

// ConfigError is a configuration syntax or consistency error.
type ConfigError struct {
	Line int
	Msg  string
}

func (e *ConfigError) Error() string {
	return fmt.Sprintf("clack config line %d: %s", e.Line, e.Msg)
}

// ParseConfig parses the Click-syntax configuration language.
// Statements end with ';'. Declarations are "name :: Type" or
// "name :: Type(arg)". Connections are "a -> b", "a [n] -> b",
// chained "a -> b -> c" (chaining uses output port 0 of each hop).
func ParseConfig(src string) (*Graph, error) {
	g := &Graph{byName: map[string]*Element{}}
	line := 0
	for _, rawStmt := range strings.Split(src, ";") {
		line++
		stmt := strings.TrimSpace(rawStmt)
		// Strip comments.
		for {
			i := strings.Index(stmt, "//")
			if i < 0 {
				break
			}
			j := strings.IndexByte(stmt[i:], '\n')
			if j < 0 {
				stmt = strings.TrimSpace(stmt[:i])
				break
			}
			stmt = strings.TrimSpace(stmt[:i] + stmt[i+j:])
		}
		if stmt == "" {
			continue
		}
		if strings.Contains(stmt, "::") {
			if err := g.parseDecl(stmt, line); err != nil {
				return nil, err
			}
			continue
		}
		if strings.Contains(stmt, "->") {
			if err := g.parseConn(stmt, line); err != nil {
				return nil, err
			}
			continue
		}
		return nil, &ConfigError{Line: line, Msg: fmt.Sprintf("cannot parse statement %q", stmt)}
	}
	if err := g.validate(); err != nil {
		return nil, err
	}
	return g, nil
}

func (g *Graph) parseDecl(stmt string, line int) error {
	parts := strings.SplitN(stmt, "::", 2)
	name := strings.TrimSpace(parts[0])
	typeStr := strings.TrimSpace(parts[1])
	arg := 0
	if i := strings.IndexByte(typeStr, '('); i >= 0 {
		j := strings.IndexByte(typeStr, ')')
		if j < i {
			return &ConfigError{Line: line, Msg: "unbalanced parentheses"}
		}
		argStr := strings.TrimSpace(typeStr[i+1 : j])
		if argStr != "" {
			if _, err := fmt.Sscanf(argStr, "%d", &arg); err != nil {
				return &ConfigError{Line: line, Msg: fmt.Sprintf("bad argument %q", argStr)}
			}
		}
		typeStr = strings.TrimSpace(typeStr[:i])
	}
	et, ok := elemTypes[typeStr]
	if !ok {
		return &ConfigError{Line: line, Msg: fmt.Sprintf("unknown element class %q", typeStr)}
	}
	if name == "" || strings.ContainsAny(name, " \t[]") {
		return &ConfigError{Line: line, Msg: fmt.Sprintf("bad element name %q", name)}
	}
	if _, dup := g.byName[name]; dup {
		return &ConfigError{Line: line, Msg: fmt.Sprintf("element %q redeclared", name)}
	}
	e := &Element{Name: name, Type: typeStr, Arg: arg, conns: make([]string, len(et.outs))}
	g.Elements = append(g.Elements, e)
	g.byName[name] = e
	return nil
}

// parseConn handles "a [p] -> b [q] -> c". Input port selectors on the
// right side are accepted but must be [0] (Clack elements have a single
// input).
func (g *Graph) parseConn(stmt string, line int) error {
	hops := strings.Split(stmt, "->")
	for h := 0; h+1 < len(hops); h++ {
		from, outPort, err := parseEndpoint(hops[h], line, h > 0)
		if err != nil {
			return err
		}
		to, inPort, err := parseEndpoint(hops[h+1], line, true)
		if err != nil {
			return err
		}
		if inPort != 0 && h+1 < len(hops)-1 {
			return &ConfigError{Line: line, Msg: "input port selector on a chained hop"}
		}
		if inPort != 0 {
			return &ConfigError{Line: line, Msg: fmt.Sprintf("element %q has a single input port", to)}
		}
		fe, ok := g.byName[from]
		if !ok {
			return &ConfigError{Line: line, Msg: fmt.Sprintf("unknown element %q", from)}
		}
		if _, ok := g.byName[to]; !ok {
			return &ConfigError{Line: line, Msg: fmt.Sprintf("unknown element %q", to)}
		}
		if outPort >= len(fe.conns) {
			return &ConfigError{Line: line, Msg: fmt.Sprintf(
				"element %q (%s) has %d output ports, port %d used", from, fe.Type, len(fe.conns), outPort)}
		}
		if fe.conns[outPort] != "" {
			return &ConfigError{Line: line, Msg: fmt.Sprintf(
				"output port %d of %q connected twice", outPort, from)}
		}
		fe.conns[outPort] = to
	}
	return nil
}

// parseEndpoint parses "name", "name [p]" or "[p] name" (the latter is
// an input-port selector).
func parseEndpoint(s string, line int, allowLeading bool) (name string, port int, err error) {
	s = strings.TrimSpace(s)
	if strings.HasPrefix(s, "[") {
		j := strings.IndexByte(s, ']')
		if j < 0 {
			return "", 0, &ConfigError{Line: line, Msg: "unbalanced port selector"}
		}
		fmt.Sscanf(s[1:j], "%d", &port)
		name = strings.TrimSpace(s[j+1:])
		return name, port, nil
	}
	if i := strings.IndexByte(s, '['); i >= 0 {
		j := strings.IndexByte(s, ']')
		if j < i {
			return "", 0, &ConfigError{Line: line, Msg: "unbalanced port selector"}
		}
		fmt.Sscanf(s[i+1:j], "%d", &port)
		name = strings.TrimSpace(s[:i])
		return name, port, nil
	}
	return s, 0, nil
}

func (g *Graph) validate() error {
	if len(g.Elements) == 0 {
		return &ConfigError{Msg: "empty configuration"}
	}
	for _, e := range g.Elements {
		for p, to := range e.conns {
			if to == "" {
				return &ConfigError{Msg: fmt.Sprintf(
					"output port %d of %q (%s) is not connected", p, e.Name, e.Type)}
			}
			te := g.byName[to]
			if elemTypes[te.Type].noInput {
				return &ConfigError{Msg: fmt.Sprintf(
					"%q connects to %q (%s), which has no input", e.Name, to, te.Type)}
			}
		}
	}
	return nil
}

// Sources returns the graph's source elements (FromDevice instances) in
// declaration order.
func (g *Graph) Sources() []*Element {
	var out []*Element
	for _, e := range g.Elements {
		if elemTypes[e.Type].isSource {
			out = append(out, e)
		}
	}
	return out
}

// Counters returns the graph's Counter elements in declaration order.
func (g *Graph) Counters() []*Element {
	var out []*Element
	for _, e := range g.Elements {
		if elemTypes[e.Type].hasStat {
			out = append(out, e)
		}
	}
	return out
}

// CompileToKnit translates the graph into a Knit compound unit plus a
// generated driver, returning the unit-language text (to be combined
// with ElementUnits), the generated sources, and the top unit name.
func (g *Graph) CompileToKnit(topName string) (units string, sources link.Sources, top string, err error) {
	sources = link.Sources{}
	var b strings.Builder

	srcs := g.Sources()
	if len(srcs) == 0 {
		return "", nil, "", &ConfigError{Msg: "configuration has no FromDevice"}
	}

	// Driver unit: polls every source until the traffic runs dry,
	// running the kernel's between-packet work (OSWork) each iteration.
	var drvImports, drvRenames, drvDeps []string
	var drvSrc strings.Builder
	for i, s := range srcs {
		drvImports = append(drvImports, fmt.Sprintf("s%d : Step", i))
		drvRenames = append(drvRenames, fmt.Sprintf("s%d.step to step_%s;", i, s.Name))
		drvDeps = append(drvDeps, fmt.Sprintf("s%d", i))
		fmt.Fprintf(&drvSrc, "int step_%s(void);\n", s.Name)
	}
	drvImports = append(drvImports, "osw : OsWork")
	drvDeps = append(drvDeps, "osw")
	drvSrc.WriteString("int os_work(void);\n")
	drvSrc.WriteString(`
int kmain(int maxiter) {
    int n = 0;
    for (int i = 0; i < maxiter; i++) {
        int got = 0;
`)
	for _, s := range srcs {
		fmt.Fprintf(&drvSrc, "        got += step_%s();\n", s.Name)
		drvSrc.WriteString("        os_work();\n")
	}
	drvSrc.WriteString(`        if (got == 0) { break; }
        n += got;
    }
    return n;
}
`)
	sources["driver.c"] = drvSrc.String()
	fmt.Fprintf(&b, `
unit RouterDriver = {
  imports [ %s ];
  exports [ main : Main ];
  depends { main needs (%s); };
  files { "driver.c" };
  rename {
    %s
  };
}
`, strings.Join(drvImports, ", "), strings.Join(drvDeps, " + "),
		strings.Join(drvRenames, "\n    "))

	// Compound unit. Each element's input port is bound under its own
	// name; Step exports as <name>_step; Stat exports as <name>_stat.
	fmt.Fprintf(&b, "\nunit %s = {\n  exports [ main : Main ];\n  link {\n", topName)

	// Device-number providers, one per distinct device argument.
	devs := map[int]bool{}
	for _, e := range g.Elements {
		if elemTypes[e.Type].needsDev {
			devs[e.Arg] = true
		}
	}
	var devNums []int
	for d := range devs {
		devNums = append(devNums, d)
	}
	sort.Ints(devNums)
	for _, d := range devNums {
		if d != 0 && d != 1 {
			return "", nil, "", &ConfigError{Msg: fmt.Sprintf("device %d not available (devices 0 and 1 exist)", d)}
		}
		fmt.Fprintf(&b, "    [dev%d] <- DevNo%d <- [];\n", d, d)
	}

	for _, e := range g.Elements {
		et := elemTypes[e.Type]
		var outs, ins []string
		if et.isSource {
			outs = append(outs, e.Name+"_step")
		} else {
			outs = append(outs, e.Name)
		}
		if et.hasStat {
			outs = append(outs, e.Name+"_stat")
		}
		for _, to := range e.conns {
			ins = append(ins, to)
		}
		if et.needsDev {
			ins = append(ins, fmt.Sprintf("dev%d", e.Arg))
		}
		fmt.Fprintf(&b, "    [%s] <- %s <- [%s];\n",
			strings.Join(outs, ", "), et.unit, strings.Join(ins, ", "))
	}
	b.WriteString("    [osw] <- OSWork <- [];\n")
	var drvIns []string
	for _, s := range srcs {
		drvIns = append(drvIns, s.Name+"_step")
	}
	drvIns = append(drvIns, "osw")
	fmt.Fprintf(&b, "    [main] <- RouterDriver <- [%s];\n  };\n}\n",
		strings.Join(drvIns, ", "))

	return b.String(), sources, topName, nil
}
