package clack

import (
	"knit/internal/knit/build"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// buildFromParts assembles a router build from unit text and sources.
func buildFromParts(units string, sources link.Sources, top string) (*build.Result, error) {
	return build.Build(build.Options{
		Top:       top,
		UnitFiles: map[string]string{"clack.unit": units},
		Sources:   sources,
		Optimize:  true,
	})
}

// installTicks registers the measurement builtins without keeping the
// stopwatch.
func installTicks(m *machine.M) { machine.InstallStopWatch(m) }
