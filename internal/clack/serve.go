package clack

import (
	"fmt"

	"knit/internal/knit/build"
	"knit/internal/knit/build/faultinject"
	"knit/internal/knit/link"
	"knit/internal/knit/observe"
	"knit/internal/knit/supervise"
	"knit/internal/machine"
)

// ServeReport summarizes one supervised serving run: what the devices
// saw, how much traffic survived the faults, and where every unit
// instance ended up.
type ServeReport struct {
	Stats *DeviceStats
	// Goodput is (transmitted + deliberately dropped) / received: the
	// fraction of ingested packets the router fully accounted for.
	// Packets lost mid-pipeline to a fault are the difference.
	Goodput float64
	Calls   int // supervised kmain iterations driven
	Faults  int // iterations that ended in a handled fault
	// Converged reports that the run ended with every instance serving
	// (healthy or degraded-to-fallback; never dead or mid-backoff).
	Converged  bool
	Statuses   []supervise.InstanceStatus
	Recoveries []supervise.RecoveryRecord
	Events     []supervise.Event
	// Metrics is the per-instance observability snapshot for the run: a
	// collector rides on every supervised serve, so calls, cycles, traps,
	// restarts, and swaps are attributed per unit instance (clack
	// -metrics renders it).
	Metrics *observe.Report
}

// FirstInstanceOf returns the first instance of the named unit in the
// program's instantiation order, or nil.
func FirstInstanceOf(res *build.Result, unitName string) *link.Instance {
	for _, inst := range res.Program.Instances {
		if inst.Unit.Name == unitName {
			return inst
		}
	}
	return nil
}

// ServeSupervised runs a built router as a supervised service over the
// given traffic, one kmain iteration per supervised call so every fault
// costs at most the packet in flight. When faultEvery > 0, an injected
// trap kills the first Classifier instance's push entry on every n-th
// call — the acceptance scenario for degraded-mode serving: the
// supervisor restarts it per policy, then swaps in ClassifierSafe, and
// the router keeps forwarding throughout.
func ServeSupervised(res *build.Result, spec TrafficSpec, pol *supervise.Policy,
	clk supervise.Clock, faultEvery int) (*ServeReport, error) {

	m := res.NewMachine()
	stats := InstallDevices(m, spec.Generate())
	machine.InstallStopWatch(m) // elements tick the measurement window
	col := observe.Attach(m)    // near-zero cost; every serve is observable
	res.SetObserver(m, col)
	if err := res.RunInit(m); err != nil {
		return nil, fmt.Errorf("clack: init: %w", err)
	}

	if faultEvery > 0 {
		victim := FirstInstanceOf(res, "Classifier")
		if victim == nil {
			return nil, fmt.Errorf("clack: no Classifier instance to inject faults into")
		}
		in := faultinject.Attach(m)
		defer in.Detach()
		in.TrapCallEvery(victim.ExportSyms["in"]["push"], faultEvery)
	}

	sup := supervise.New(res, m, pol, clk)
	sup.Observe(col)
	rep := &ServeReport{Stats: stats}
	// Each iteration consumes at least one packet or reports the traffic
	// dry, so this bound is never reached by a healthy or degraded
	// router; it catches a supervisor that stopped making progress.
	limit := 4*spec.Packets + 64
	for rep.Calls < limit {
		rep.Calls++
		got, err := sup.Call("main", "kmain", 1)
		if err != nil {
			rep.Faults++
			continue
		}
		if got == 0 {
			break
		}
	}
	if rep.Calls >= limit {
		return nil, fmt.Errorf("clack: supervised router made no progress after %d calls", limit)
	}

	rx := stats.Rx[0] + stats.Rx[1]
	if rx > 0 {
		rep.Goodput = float64(stats.Tx[0]+stats.Tx[1]+stats.Dropped) / float64(rx)
	}
	rep.Converged = sup.Healthy()
	rep.Statuses = sup.Report()
	rep.Recoveries = sup.Recoveries()
	rep.Events = sup.Events()
	rep.Metrics = col.Report()
	if err := m.CheckDynInvariants(); err != nil {
		return nil, fmt.Errorf("clack: dynamic invariants after serving: %w", err)
	}
	return rep, nil
}
