package clack

import (
	"strings"
	"testing"

	"knit/internal/knit/reconfigure"
	"knit/internal/knit/supervise"
	"knit/internal/machine"
)

// TestUpgradeTargetMinimalDiff pins the headline property of the
// upgrade path: swapping the classifier unit in the 24-component router
// configuration diffs to exactly the two classifier slots — every other
// slot (and the whole driver/OS scaffolding) is untouched.
func TestUpgradeTargetMinimalDiff(t *testing.T) {
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatal(err)
	}
	tgt, err := UpgradeTarget("ClassifierV2")
	if err != nil {
		t.Fatal(err)
	}
	plan, err := reconfigure.Diff(res, tgt)
	if err != nil {
		t.Fatal(err)
	}
	sum := plan.Summary()
	if !strings.Contains(sum, "2 replace, 0 add, 0 retire, 0 export rewires") {
		t.Fatalf("plan not minimal: %s", sum)
	}
	loads, interposes := 0, 0
	for _, st := range plan.Steps() {
		switch st.Op {
		case "load":
			loads++
			if !strings.Contains(st.Detail, "ClassifierV2") {
				t.Errorf("load step %+v does not target ClassifierV2", st)
			}
		case "interpose":
			interposes++
		default:
			t.Errorf("unexpected step %+v", st)
		}
	}
	if loads != 2 || interposes != 2 {
		t.Fatalf("got %d loads, %d interposes; want 2 and 2", loads, interposes)
	}
}

func TestUpgradeTargetUnknownUnit(t *testing.T) {
	if _, err := UpgradeTarget("NoSuchClassifier"); err != nil {
		t.Fatalf("target construction should not validate the unit yet: %v", err)
	}
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatal(err)
	}
	tgt, _ := UpgradeTarget("NoSuchClassifier")
	if _, err := reconfigure.Diff(res, tgt); err == nil {
		t.Fatal("Diff accepted a target with an undefined unit")
	}
}

func runUpgrade(t *testing.T, backend machine.Backend, bad bool) *UpgradeReport {
	t.Helper()
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatal(err)
	}
	res.Backend = backend
	clk := func(int) supervise.Clock { return supervise.Wall() }
	rep, err := ServeFleetUpgrade(res, DefaultFlowTraffic(3000), 4, 1, bad,
		supervise.Default(), clk)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestServeFleetUpgradePromote is the upgrade-under-load demo: the
// router keeps forwarding while the classifiers are replaced live, the
// canary holds the SLO, the plan promotes fleet-wide — with zero
// goodput loss and zero per-flow order violations, on both backends.
func TestServeFleetUpgradePromote(t *testing.T) {
	for _, backend := range []machine.Backend{machine.BackendInterp, machine.BackendCompiled} {
		t.Run(backend.String(), func(t *testing.T) {
			rep := runUpgrade(t, backend, false)
			if !rep.Promoted || rep.RolledBack {
				t.Fatalf("promoted=%v rolledBack=%v (plan %s, %d observe rounds)",
					rep.Promoted, rep.RolledBack, rep.Plan, rep.ObserveRounds)
			}
			if rep.Goodput < 0.999 {
				t.Errorf("goodput %.4f under upgrade, want >= 0.999", rep.Goodput)
			}
			if rep.OrderViolations != 0 {
				t.Errorf("%d per-flow order violations under upgrade", rep.OrderViolations)
			}
			if !rep.Converged {
				t.Error("fleet did not converge")
			}
			if rep.DecisionAfter <= 0 {
				t.Errorf("DecisionAfter = %d, want > 0 (decision must land mid-stream)", rep.DecisionAfter)
			}
		})
	}
}

// TestServeFleetUpgradeBadRollsBack is the injected-regression drill:
// ClassifierBad passes every load-time check and regresses only under
// traffic; the canary SLO must catch it and the rollback must be
// snapshot-verified, while the stable shards never see the bad unit.
func TestServeFleetUpgradeBadRollsBack(t *testing.T) {
	for _, backend := range []machine.Backend{machine.BackendInterp, machine.BackendCompiled} {
		t.Run(backend.String(), func(t *testing.T) {
			rep := runUpgrade(t, backend, true)
			if rep.Promoted || !rep.RolledBack {
				t.Fatalf("promoted=%v rolledBack=%v (plan %s, %d observe rounds)",
					rep.Promoted, rep.RolledBack, rep.Plan, rep.ObserveRounds)
			}
			if !rep.RollbackVerified {
				t.Error("rollback was not snapshot-identical")
			}
			// Only the canary shard may have lost packets; the stable
			// shards' goodput is untouched.
			for id, st := range rep.PerShard {
				if id == rep.Canaries[0] {
					continue
				}
				if st.Rx != st.Tx+st.Dropped {
					t.Errorf("stable shard %d lost packets: rx %d, tx %d, dropped %d",
						id, st.Rx, st.Tx, st.Dropped)
				}
			}
			if rep.OrderViolations != 0 {
				t.Errorf("%d per-flow order violations", rep.OrderViolations)
			}
		})
	}
}
