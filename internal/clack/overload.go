package clack

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"knit/internal/knit/build"
	"knit/internal/knit/fleet"
	"knit/internal/knit/observe"
	"knit/internal/knit/overload"
	"knit/internal/knit/supervise"
	"knit/internal/machine"
)

// This file is the overload soak: an open-loop generator offers the
// fleet a multiple of its measured capacity while a shard is killed
// every KillEvery packets, and the overload layer has to keep the
// accepted traffic flowing — admission control sheds by class, the
// killed shard's breaker trips and its flows re-steer, redelivery
// replays the in-flight batch on each respawn, and a fleet-global
// order oracle proves per-flow order held through all of it.

// OverloadSpec shapes an overload soak.
type OverloadSpec struct {
	Packets   int     // offered packets in the open-loop phase
	Flows     int     // distinct flow keys
	Shards    int     // fleet width
	Multiple  float64 // offered load as a multiple of measured capacity (default 3)
	KillEvery int     // kill the serving shard every N processed packets (0 = none)
	Redeliver int     // fleet RedeliverAttempts (0 = at-most-once)
	Seed      int64
}

// OverloadReport is the soak's ledger. AcceptedGoodput is served over
// admitted — of the traffic the fleet accepted, how much it actually
// finished; shed traffic was refused honestly at the door and does not
// count against it.
type OverloadReport struct {
	Shards      int
	CapacityPPS float64 // measured closed-loop, packets/sec
	OfferedPPS  float64 // CapacityPPS * Multiple

	Submitted   uint64
	Admitted    uint64
	Served      uint64
	Dropped     uint64 // fleet-level batch losses (redelivery exhausted)
	Redelivered uint64
	Shed        [overload.NumClasses]uint64
	ShedTotal   uint64

	AcceptedGoodput float64 // Served / Admitted
	ShedFraction    float64 // ShedTotal / Submitted
	P99Cycles       int64   // per-call cycle p99 from the merged fleet report

	OrderViolations int // fleet-global per-flow sequence inversions
	Respawns        int
	Stats           overload.Stats

	// ConservationOK: submitted == served + dropped + shed exactly.
	ConservationOK bool

	Rx, Tx, RouterDropped int // device-level accounting (drops here are router policy, not losses)
}

// orderOracle is the fleet-global per-flow order check: one monotonic
// sequence ledger shared by every shard's __tx builtin, surviving
// respawns and re-steers. Mutexed — shard goroutines transmit
// concurrently.
type orderOracle struct {
	mu         sync.Mutex
	lastSeq    map[int64]int64
	violations int
}

func (o *orderOracle) check(flow, seq int64) bool {
	o.mu.Lock()
	defer o.mu.Unlock()
	ok := seq > o.lastSeq[flow]
	if !ok {
		o.violations++
	}
	o.lastSeq[flow] = seq
	return ok
}

func (o *orderOracle) count() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.violations
}

// overloadRig is the host side of an overload soak. Unlike serveRig's
// batch-at-once handler, it serves packet by packet and acks each one,
// so a kill mid-batch loses nothing recoverable: the unacked remainder
// is journaled by the fleet and replayed onto the respawned machine.
type overloadRig struct {
	ios    []*shardIO
	totals []ShardServeStats
	oracle *orderOracle

	processed atomic.Int64 // packets fully served, fleet-wide
	nextKill  atomic.Int64
	killEvery int64
}

var errShardKilled = fmt.Errorf("clack: overload soak killed this shard")

func newOverloadRig(shards, killEvery int) *overloadRig {
	rg := &overloadRig{
		ios:       make([]*shardIO, shards),
		totals:    make([]ShardServeStats, shards),
		oracle:    &orderOracle{lastSeq: map[int64]int64{}},
		killEvery: int64(killEvery),
	}
	rg.nextKill.Store(int64(killEvery))
	return rg
}

func (rg *overloadRig) retire(id int) {
	io := rg.ios[id]
	if io == nil {
		return
	}
	rg.totals[id].Rx += io.stats.Rx[0] + io.stats.Rx[1]
	rg.totals[id].Tx += io.stats.Tx[0] + io.stats.Tx[1]
	rg.totals[id].Dropped += io.stats.Dropped
	rg.totals[id].Faults += io.faults
	rg.totals[id].Calls += io.calls
	rg.totals[id].OrderViolations += io.orderViolations
}

func (rg *overloadRig) setup(id int, m *machine.M) error {
	machine.InstallStopWatch(m)
	if id == fleet.Prototype {
		installShardDevices(m, &shardIO{lastSeq: map[int64]int64{}})
		return nil
	}
	rg.retire(id)
	rg.ios[id] = &shardIO{oracle: rg.oracle}
	installShardDevices(m, rg.ios[id])
	return nil
}

// handler serves one packet at a time, acking each, and pulls the kill
// lever between packets: whichever shard crosses the fleet-wide
// processed-count threshold dies, transiently — its machine is gone,
// but the unacked remainder replays on the respawn, and the device
// queues are empty between packets, so the recoverable path drops
// nothing.
func (rg *overloadRig) handler(sh *fleet.Shard[FlowPacket], batch []FlowPacket) error {
	io := rg.ios[sh.ID]
	for i, fp := range batch {
		if rg.killEvery > 0 {
			next := rg.nextKill.Load()
			if rg.processed.Load() >= next && rg.nextKill.CompareAndSwap(next, next+rg.killEvery) {
				return errShardKilled
			}
		}
		lane := fleet.FlowLane(fp.Flow, 2)
		io.rx[lane] = append(io.rx[lane], fp.Pkt)
		limit := io.calls + 68 // mirrors serveRig's 4-per-packet + 64 bound
		for io.remaining() > 0 {
			if io.calls >= limit {
				return fmt.Errorf("no progress after %d kmain calls (%d packets stuck)",
					limit, io.remaining())
			}
			io.calls++
			if _, err := sh.Sup.Call("main", "kmain", 1); err != nil {
				io.faults++
			}
		}
		sh.Ack(i + 1)
		rg.processed.Add(1)
	}
	return nil
}

// classOf assigns deterministic priority classes by flow key: 20% High,
// 60% Normal, 20% Low.
func classOf(flow uint64) overload.Class {
	switch flow % 10 {
	case 0, 1:
		return overload.High
	case 8, 9:
		return overload.Low
	default:
		return overload.Normal
	}
}

// measureCapacity runs a short closed-loop burst through a throwaway
// fleet of the same shape (no kills, no controller) and returns the
// sustained packets/sec — the capacity the open-loop phase multiplies.
func measureCapacity(res *build.Result, spec OverloadSpec, pkts []FlowPacket) (float64, error) {
	rg := newOverloadRig(spec.Shards, 0)
	fl, err := fleet.New[FlowPacket](res, fleet.Config{
		Shards: spec.Shards,
		Setup:  rg.setup,
	}, rg.handler)
	if err != nil {
		return 0, err
	}
	n := len(pkts) / 4
	if n < 256 {
		n = 256
	}
	if n > len(pkts) {
		n = len(pkts)
	}
	start := time.Now()
	for _, fp := range pkts[:n] {
		if err := fl.Submit(fp.Flow, fp); err != nil {
			return 0, err
		}
	}
	if err := fl.Close(); err != nil {
		return 0, fmt.Errorf("clack: capacity run: %w", err)
	}
	elapsed := time.Since(start)
	if elapsed <= 0 {
		elapsed = time.Nanosecond
	}
	return float64(n) / elapsed.Seconds(), nil
}

// ServeOverload runs the overload soak: measure capacity closed-loop,
// then offer Multiple times that rate open-loop through the overload
// controller while shards are killed on schedule.
func ServeOverload(res *build.Result, spec OverloadSpec) (*OverloadReport, error) {
	if spec.Shards < 2 {
		return nil, fmt.Errorf("clack: overload soak needs >= 2 shards (re-steering needs a sibling), got %d", spec.Shards)
	}
	if spec.Multiple <= 0 {
		spec.Multiple = 3
	}
	fspec := FlowSpec{Packets: spec.Packets, Flows: spec.Flows, Skew: 1.05, Seed: spec.Seed}
	if fspec.Flows < 1 {
		fspec.Flows = 64
	}
	pkts := fspec.Generate()

	capacity, err := measureCapacity(res, spec, pkts)
	if err != nil {
		return nil, err
	}
	offered := capacity * spec.Multiple

	rg := newOverloadRig(spec.Shards, spec.KillEvery)
	fl, err := fleet.New[FlowPacket](res, fleet.Config{
		Shards:            spec.Shards,
		RedeliverAttempts: spec.Redeliver,
		Setup:             rg.setup,
	}, rg.handler)
	if err != nil {
		return nil, err
	}
	ctrl := overload.NewController(fl, overload.Config{
		SLO:       observe.SLO{MinCalls: 16, Windows: 4, PromoteAfter: 2},
		TripAfter: 2,
		CoolTicks: 4,
		MaxRemaps: 32,
		ParkCap:   256,
	})

	// Open loop: each packet has a wall-clock slot at the offered rate;
	// the generator never waits for the fleet, only for the clock. High
	// traffic gets a small deadline budget, everything else must fit or
	// shed.
	interval := time.Duration(float64(time.Second) / offered)
	tickEvery := len(pkts) / 64
	if tickEvery < 16 {
		tickEvery = 16
	}
	start := time.Now()
	for i, fp := range pkts {
		if d := time.Until(start.Add(time.Duration(i) * interval)); d > 0 {
			time.Sleep(d)
		}
		class := classOf(fp.Flow)
		if class == overload.High {
			ctrl.SubmitDeadline(fp.Flow, class, fp, time.Now().Add(2*time.Millisecond))
		} else {
			ctrl.TrySubmit(fp.Flow, class, fp)
		}
		if (i+1)%tickEvery == 0 {
			ctrl.Tick()
		}
	}
	// Settle: let barriers drain and breakers close, then stop.
	for i := 0; i < 8; i++ {
		ctrl.Tick()
		time.Sleep(time.Millisecond)
	}
	ctrl.Drain(time.Now().Add(10 * time.Second))
	closeErr := fl.Close()
	if closeErr != nil && spec.KillEvery == 0 {
		return nil, closeErr // with kills, shard errors are the point
	}

	st := ctrl.Stats()
	rep := &OverloadReport{
		Shards:      spec.Shards,
		CapacityPPS: capacity,
		OfferedPPS:  offered,
		Submitted:   st.Submitted,
		Admitted:    st.Admitted,
		Shed:        st.Shed,
		ShedTotal:   st.ShedTotal,
		Stats:       st,
	}
	for id, sh := range fl.Shards() {
		rg.retire(id)
		rg.ios[id] = nil
		rep.Served += sh.Served()
		rep.Dropped += sh.Dropped()
		rep.Redelivered += sh.Redelivered()
		rep.Respawns += sh.Respawns()
		rep.Rx += rg.totals[id].Rx
		rep.Tx += rg.totals[id].Tx
		rep.RouterDropped += rg.totals[id].Dropped
	}
	rep.OrderViolations = rg.oracle.count()
	if rep.Admitted > 0 {
		rep.AcceptedGoodput = float64(rep.Served) / float64(rep.Admitted)
	}
	if rep.Submitted > 0 {
		rep.ShedFraction = float64(rep.ShedTotal) / float64(rep.Submitted)
	}
	totals := fl.Report().Totals()
	rep.P99Cycles = totals.P99()
	rep.ConservationOK = rep.Submitted == rep.Served+rep.Dropped+rep.ShedTotal &&
		rep.Admitted == rep.Served+rep.Dropped
	return rep, nil
}

// NewOverloadFleetPolicy exists for symmetry with the other serving
// modes: the soak uses the default decorrelated policy per shard.
func NewOverloadFleetPolicy() *supervise.Policy { return supervise.Default() }
