package clack

import (
	"fmt"
	"math/rand"

	"knit/internal/machine"
)

// Packet kinds.
const (
	KindIP       = 0
	KindARP      = 2
	KindOther    = 3
	KindARPReply = 4
)

// Packet is a host-side packet description.
type Packet struct {
	Kind     int64
	TTL      int64
	Checksum int64
	Src      int64
	Dst      int64
	Payload  [8]int64
}

func (p *Packet) words() []int64 {
	w := make([]int64, PktWords)
	w[0] = p.Kind
	w[1] = p.TTL
	w[2] = p.Checksum
	w[3] = p.Src
	w[4] = p.Dst
	// w[5] = paint, written by the router.
	copy(w[6:], p.Payload[:])
	return w
}

// fold computes the router's 16-bit-folded checksum over ttl + dst +
// payload (the checksum covers the TTL, as IP's does).
func fold(ttl, dst int64, payload [8]int64) int64 {
	sum := ttl + dst
	for _, v := range payload {
		sum += v
	}
	return (sum & 65535) + (sum >> 16)
}

// TrafficSpec configures the synthetic packet mix. The paper's testbed
// streamed packets through the "machine in the middle"; this generator
// exercises the same code paths: valid IP (both routes), ARP requests,
// unclassifiable packets, bad checksums, and expiring TTLs.
type TrafficSpec struct {
	Packets     int
	ARPEvery    int // every n-th packet is an ARP request (0 = none)
	OtherEvery  int // every n-th packet is unclassifiable
	BadSumEvery int // every n-th packet has a corrupt checksum
	LowTTLEvery int // every n-th packet arrives with TTL 1
	Seed        int64
}

// DefaultTraffic is the Table 1 / Table 2 workload: dominated by the IP
// fast path with a sprinkling of the slow paths.
func DefaultTraffic(n int) TrafficSpec {
	return TrafficSpec{Packets: n, ARPEvery: 10, OtherEvery: 37,
		BadSumEvery: 41, LowTTLEvery: 43, Seed: 1}
}

// Generate builds the per-device packet streams (round-robin over the
// two devices).
func (spec TrafficSpec) Generate() [2][]Packet {
	r := rand.New(rand.NewSource(spec.Seed))
	var out [2][]Packet
	// Packets are large values; preallocate so appending never reallocates
	// (the copies used to dominate generation time for big specs).
	out[0] = make([]Packet, 0, spec.Packets/2+1)
	out[1] = make([]Packet, 0, spec.Packets/2+1)
	every := func(n, i int) bool { return n > 0 && i%n == n-1 }
	// Destination network 10 routes to port 0, 20 to port 1, 30 to
	// port 0; anything else takes the default route (port 1).
	nets := [...]int64{10, 20, 30, 77}
	for i := 0; i < spec.Packets; i++ {
		var p Packet
		p.TTL = int64(4 + r.Intn(60))
		p.Src = int64(r.Intn(1 << 16))
		p.Dst = nets[r.Intn(len(nets))]*256 + int64(r.Intn(256))
		for j := range p.Payload {
			p.Payload[j] = int64(r.Intn(1 << 15))
		}
		p.Checksum = fold(p.TTL, p.Dst, p.Payload)
		switch {
		case every(spec.ARPEvery, i):
			p.Kind = KindARP
		case every(spec.OtherEvery, i):
			p.Kind = KindOther
		case every(spec.BadSumEvery, i):
			p.Kind = KindIP
			p.Checksum ^= 0x5a5a
		case every(spec.LowTTLEvery, i):
			p.Kind = KindIP
			p.TTL = 1
		default:
			p.Kind = KindIP
		}
		out[i%2] = append(out[i%2], p)
	}
	return out
}

// DeviceStats records what the simulated NIC observed.
type DeviceStats struct {
	Rx      [2]int
	Tx      [2]int
	Dropped int
	// TxTTLOK counts transmitted IP packets whose TTL was decremented.
	TxTTLOK int
	TxBad   []string // descriptions of malformed transmissions
}

// Forwardable returns the total transmitted packet count.
func (s *DeviceStats) Forwardable() int { return s.Tx[0] + s.Tx[1] }

// InstallDevices registers the NIC builtins (__rx_poll, __tx, __drop) on
// m, feeding the given streams. Packets are delivered through two
// per-device buffers placed at the top of simulated memory, well above
// the stack region.
func InstallDevices(m *machine.M, streams [2][]Packet) *DeviceStats {
	stats := &DeviceStats{}
	next := [2]int{}
	bufAddr := func(dev int64) int64 {
		return int64(len(m.Mem)) - int64(dev+1)*PktWords
	}
	m.RegisterBuiltin("__rx_poll", func(mm *machine.M, args []int64) (int64, error) {
		dev := args[0]
		if dev < 0 || dev > 1 {
			return 0, fmt.Errorf("clack: rx on bad device %d", dev)
		}
		q := streams[dev]
		if next[dev] >= len(q) {
			return 0, nil
		}
		p := q[next[dev]]
		next[dev]++
		stats.Rx[dev]++
		addr := bufAddr(dev)
		if err := mm.WriteWords(addr, p.words()); err != nil {
			return 0, err
		}
		return addr, nil
	})
	m.RegisterBuiltin("__tx", func(mm *machine.M, args []int64) (int64, error) {
		dev, addr := args[0], args[1]
		if dev < 0 || dev > 1 {
			return 0, fmt.Errorf("clack: tx on bad device %d", dev)
		}
		stats.Tx[dev]++
		kind := mm.Mem[addr]
		ttl := mm.Mem[addr+1]
		if kind == KindIP {
			if ttl <= 0 {
				stats.TxBad = append(stats.TxBad,
					fmt.Sprintf("tx dev%d: IP packet with ttl %d", dev, ttl))
			} else {
				stats.TxTTLOK++
			}
		}
		return 0, nil
	})
	m.RegisterBuiltin("__drop", func(mm *machine.M, args []int64) (int64, error) {
		stats.Dropped++
		return 0, nil
	})
	return stats
}
