package clack

import (
	"errors"
	"reflect"
	"testing"

	"knit/internal/knit/build"
	"knit/internal/knit/build/faultinject"
	"knit/internal/knit/observe"
	"knit/internal/knit/supervise"
)

// TestSupervisedRouterKeepsGoodput is the issue's acceptance scenario:
// an element is killed every 50 packets, and the supervised router must
// sustain ≥90% goodput, converging to a state where every instance is
// healthy or degraded-to-fallback — never dead.
func TestSupervisedRouterKeepsGoodput(t *testing.T) {
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatalf("BuildRouter: %v", err)
	}
	rep, err := ServeSupervised(res, DefaultTraffic(2000), supervise.Default(),
		supervise.NewFakeClock(), 50)
	if err != nil {
		t.Fatalf("ServeSupervised: %v", err)
	}

	if rep.Goodput < 0.90 {
		t.Errorf("goodput = %.4f, want >= 0.90", rep.Goodput)
	}
	if !rep.Converged {
		t.Error("router did not converge to a fully serving state")
	}
	for _, st := range rep.Statuses {
		if st.State != supervise.Healthy && st.State != supervise.Degraded {
			t.Errorf("%s ended %v, want healthy or degraded-to-fallback", st.Path, st.State)
		}
	}

	// Default policy: two restarts, then the fallback swap; afterwards
	// the injection no longer reaches the (interposed-away) original.
	victim := FirstInstanceOf(res, "Classifier")
	var vst supervise.InstanceStatus
	for _, st := range rep.Statuses {
		if st.Path == victim.Path {
			vst = st
		}
	}
	if vst.State != supervise.Degraded || vst.Restarts != 2 || vst.Swaps != 1 {
		t.Errorf("victim status = %+v, want degraded after 2 restarts and 1 swap", vst)
	}
	if rep.Faults != 3 {
		t.Errorf("faulted calls = %d, want 3", rep.Faults)
	}

	// Every received packet is accounted for except the ones in flight
	// when a fault struck.
	rx := rep.Stats.Rx[0] + rep.Stats.Rx[1]
	accounted := rep.Stats.Tx[0] + rep.Stats.Tx[1] + rep.Stats.Dropped
	if rx-accounted != rep.Faults {
		t.Errorf("lost %d packets with %d faults; every fault should cost exactly one",
			rx-accounted, rep.Faults)
	}
	if len(rep.Stats.TxBad) > 0 {
		t.Errorf("malformed transmissions under supervision: %v", rep.Stats.TxBad)
	}

	// The serve-time collector attributed the run: the report must carry
	// per-instance metrics, with the victim's restarts and swap on the
	// victim's ledger and the bulk of the calls attributed somewhere.
	if rep.Metrics == nil || rep.Metrics.TotalCalls() == 0 {
		t.Fatal("serve report carries no observability metrics")
	}
	var vm *observe.InstanceMetrics
	for i := range rep.Metrics.Instances {
		if rep.Metrics.Instances[i].Path == victim.Path {
			vm = &rep.Metrics.Instances[i]
		}
	}
	if vm == nil {
		t.Fatalf("no metrics ledger for victim %s", victim.Path)
	}
	if vm.Restarts != 2 || vm.Swaps != 1 {
		t.Errorf("victim ledger restarts=%d swaps=%d, want 2 and 1", vm.Restarts, vm.Swaps)
	}
	if vm.TrapTotal() != 3 {
		t.Errorf("victim ledger traps = %d, want 3", vm.TrapTotal())
	}
}

// TestSupervisedRouterNoFaults: with no injection the supervised loop is
// just a slow-path RunRouter — same forwarding totals, no recoveries.
func TestSupervisedRouterNoFaults(t *testing.T) {
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatalf("BuildRouter: %v", err)
	}
	rep, err := ServeSupervised(res, DefaultTraffic(400), nil, supervise.NewFakeClock(), 0)
	if err != nil {
		t.Fatalf("ServeSupervised: %v", err)
	}
	if rep.Goodput != 1.0 {
		t.Errorf("goodput = %.4f, want 1.0 with no faults", rep.Goodput)
	}
	if rep.Faults != 0 || len(rep.Recoveries) != 0 {
		t.Errorf("faults = %d, recoveries = %v, want none", rep.Faults, rep.Recoveries)
	}

	meas, err := RunRouter(res, DefaultTraffic(400))
	if err != nil {
		t.Fatalf("RunRouter: %v", err)
	}
	if got := rep.Stats.Tx[0] + rep.Stats.Tx[1]; got != meas.Forwarded {
		t.Errorf("supervised run forwarded %d, unsupervised %d", got, meas.Forwarded)
	}
}

// TestRouterFallbackSwapFaultLeavesZeroResidue: a fault during the
// fallback swap itself (ClassifierSafe's initializer dies) must roll
// back to the exact pre-swap machine — no module, no redirect, no data
// change — and a retry after the fault clears must succeed.
func TestRouterFallbackSwapFaultLeavesZeroResidue(t *testing.T) {
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatalf("BuildRouter: %v", err)
	}
	m := res.NewMachine()
	InstallDevices(m, DefaultTraffic(16).Generate())
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	victim := FirstInstanceOf(res, "Classifier")
	before := m.Snapshot()

	in := faultinject.Attach(m)
	defer in.Detach()
	errBoom := errors.New("boom")
	in.FailEntryMatching("safe_init", errBoom)
	_, err = res.SwapFallback(m, victim)
	var lerr *build.LifecycleError
	if !errors.As(err, &lerr) || lerr.Op != "swap" || !lerr.RolledBack {
		t.Fatalf("err = %v, want rolled-back swap LifecycleError", err)
	}
	if !errors.Is(err, errBoom) {
		t.Errorf("injected cause lost from %v", err)
	}
	if mods := m.DynModules(); len(mods) != 0 {
		t.Errorf("failed swap left modules: %v", mods)
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Errorf("invariants after failed swap: %v", err)
	}
	if after := m.Snapshot(); !reflect.DeepEqual(before, after) {
		t.Error("failed swap changed machine state")
	}

	in.Clear()
	lu, err := res.SwapFallback(m, victim)
	if err != nil {
		t.Fatalf("retry swap: %v", err)
	}
	if mods := m.DynModules(); len(mods) != 1 || mods[0] != lu.Name() {
		t.Errorf("modules after retry = %v, want only %s", mods, lu.Name())
	}
	if err := m.CheckDynInvariants(); err != nil {
		t.Error(err)
	}
}
