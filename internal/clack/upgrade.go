package clack

import (
	"fmt"
	"strings"
	"time"

	"knit/internal/knit/build"
	"knit/internal/knit/fleet"
	"knit/internal/knit/link"
	"knit/internal/knit/reconfigure"
	"knit/internal/knit/supervise"
)

// This file is the live-reconfiguration serving mode: the standard
// router keeps forwarding flow-structured traffic while every
// Classifier slot is upgraded in place (ClassifierV2), or — the drill —
// while a regressed replacement (ClassifierBad) is caught by the canary
// SLO and rolled back. The upgrade path is the reconfigure package's:
// config diff against the running build, transactional per-shard apply,
// SLO-gated promote/rollback across the fleet.

// UpgradeTarget builds the reconfiguration target that swaps every
// Classifier slot of the standard router for unitName (keeping ports,
// wiring, and positions identical — which is exactly what makes the
// config diff minimal: two slot replacements, nothing else).
func UpgradeTarget(unitName string) (reconfigure.Target, error) {
	g, err := ParseConfig(StandardRouterConfig)
	if err != nil {
		return reconfigure.Target{}, err
	}
	routerUnits, genSources, top, err := g.CompileToKnit("ClackRouter")
	if err != nil {
		return reconfigure.Target{}, err
	}
	// The generated top-level unit wires each element instance with one
	// link line; editing the unit name on the classifier lines is the
	// whole configuration change.
	swapped := strings.ReplaceAll(routerUnits, "<- Classifier <-", "<- "+unitName+" <-")
	if swapped == routerUnits {
		return reconfigure.Target{}, fmt.Errorf("clack: no Classifier link lines in generated router units")
	}
	sources := link.Sources{}
	for k, v := range genSources {
		sources[k] = v
	}
	for k, v := range ElementSources() {
		sources[k] = v
	}
	return reconfigure.Target{
		Top:       top,
		UnitFiles: map[string]string{"clack.unit": ElementUnits + swapped},
		Sources:   sources,
	}, nil
}

// UpgradeReport extends a serving run's FleetReport with the canary
// trial's outcome.
type UpgradeReport struct {
	*FleetReport
	// Plan is the human-readable diff summary that was applied.
	Plan string
	// Canaries are the shard IDs that trialled the upgrade.
	Canaries []int
	// Promoted / RolledBack record how the trial ended (exactly one is
	// set). RollbackVerified reports that every rolled-back canary
	// matched its pre-apply snapshot word for word.
	Promoted         bool
	RolledBack       bool
	RollbackVerified bool
	// ObserveRounds counts SLO window ticks; DecisionAfter is how many
	// packets the fleet served between the canary apply and the
	// decision, and DecisionLatency the wall-clock span of the same
	// interval.
	ObserveRounds   int
	DecisionAfter   int
	DecisionLatency time.Duration
}

// upgradeSLO gates a serving-mode canary. MinCalls is sized so a window
// fills within a few observation ticks even on small CI runs.
func upgradeSLO() reconfigure.SLO {
	return reconfigure.SLO{MinCalls: 64, Windows: 4, PromoteAfter: 2}
}

// ServeFleetUpgrade serves spec's traffic over a sharded router fleet
// and, one third of the way into the stream, live-upgrades the
// classifiers: the plan is applied to `canaries` shards, judged against
// the stable shards' SLO window by window as traffic keeps flowing, and
// promoted fleet-wide or rolled back snapshot-identically. With bad set
// the replacement is ClassifierBad — the injected-regression drill that
// must end in a verified rollback.
func ServeFleetUpgrade(res *build.Result, spec FlowSpec, shards, canaries int, bad bool,
	pol *supervise.Policy, clk func(int) supervise.Clock) (*UpgradeReport, error) {

	unitName := "ClassifierV2"
	if bad {
		unitName = "ClassifierBad"
	}
	tgt, err := UpgradeTarget(unitName)
	if err != nil {
		return nil, err
	}
	plan, err := reconfigure.Diff(res, tgt)
	if err != nil {
		return nil, fmt.Errorf("clack: diff against %s: %w", unitName, err)
	}

	rg, err := newServeRig(res, shards, 0)
	if err != nil {
		return nil, err
	}
	fl, err := fleet.New[FlowPacket](res, fleet.Config{
		Shards: shards,
		Policy: pol,
		Clock:  clk,
		Setup:  rg.setup,
	}, rg.handler)
	if err != nil {
		return nil, err
	}
	if canaries < 1 {
		canaries = 1
	}
	can, err := reconfigure.NewCanary(fl, plan, float64(canaries)/float64(shards), upgradeSLO())
	if err != nil {
		fl.Close()
		return nil, err
	}

	rep := &UpgradeReport{Plan: plan.Summary(), Canaries: can.Canaries()}
	pkts := spec.Generate()

	// Phase 1: warm the fleet on the base configuration.
	warm := len(pkts) / 3
	for _, fp := range pkts[:warm] {
		fl.Submit(fp.Flow, fp)
	}

	// Phase 2: apply to the canaries and keep serving, ticking the SLO
	// windows at a steady packet cadence.
	start := time.Now()
	if err := can.Start(); err != nil {
		fl.Close()
		return nil, fmt.Errorf("clack: canary start: %w", err)
	}
	decision := reconfigure.Pending
	act := func(d reconfigure.Decision, served int) error {
		decision = d
		rep.DecisionAfter = served
		rep.DecisionLatency = time.Since(start)
		if d == reconfigure.Promote {
			if err := can.Promote(); err != nil {
				return fmt.Errorf("clack: promote: %w", err)
			}
			rep.Promoted = true
			return nil
		}
		can.Rollback()
		rep.RolledBack = true
		rep.RollbackVerified = can.RollbackVerified() == nil
		return nil
	}
	tick := len(pkts) / 24
	if tick < 128 {
		tick = 128
	}
	served := 0
	for _, fp := range pkts[warm:] {
		fl.Submit(fp.Flow, fp)
		served++
		if decision == reconfigure.Pending && served%tick == 0 {
			rep.ObserveRounds++
			if d := can.Observe(); d != reconfigure.Pending {
				if err := act(d, served); err != nil {
					fl.Close()
					return nil, err
				}
			}
		}
	}
	// Phase 3: a trial still pending when the stream ends gets a last few
	// quiet window ticks; if it stays undecided the fleet must not be
	// left split — an unproven upgrade rolls back.
	for extra := 0; decision == reconfigure.Pending && extra < 2*upgradeSLO().Windows; extra++ {
		rep.ObserveRounds++
		if d := can.Observe(); d != reconfigure.Pending {
			if err := act(d, served); err != nil {
				fl.Close()
				return nil, err
			}
		}
	}
	if decision == reconfigure.Pending {
		if err := act(reconfigure.Rollback, served); err != nil {
			fl.Close()
			return nil, err
		}
	}
	rep.FleetReport = rg.report(fl, fl.Close())
	return rep, nil
}
