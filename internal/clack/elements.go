// Package clack is the paper's §5.2 system: a subset of the Click
// modular router implemented as Knit components instead of C++ classes.
// It provides the router elements (as cmini sources plus unit
// descriptions), a Click-syntax configuration language that compiles to
// Knit compound units, a synthetic traffic source, and the modular /
// hand-optimized router variants measured in Table 1.
package clack

import (
	"fmt"
	"strings"

	"knit/internal/knit/link"
)

// Packet layout (word offsets). Packets live in a device ring buffer;
// elements manipulate them by address.
//
//	word 0: kind      (0 = IP, 2 = ARP request, 3 = other, 4 = ARP reply)
//	word 1: ttl
//	word 2: checksum  (sum of payload words + dst, 16-bit folded)
//	word 3: src
//	word 4: dst       (high byte selects the output network)
//	word 5: paint     (scratch: ingress device, then egress port)
//	word 6..13: payload
const PktWords = 14

// srcPktH is the shared packet structure definition, textually included
// in every element (components share headers, as OSKit components do).
const srcPktH = `
struct pkt {
    int kind;
    int ttl;
    int checksum;
    int src;
    int dst;
    int paint;
    int payload[8];
};
`

// srcFromDevice polls the receive ring of its device and pushes each
// packet into the graph; the measurement window opens when a packet
// enters the graph (Table 1's methodology).
const srcFromDevice = srcPktH + `
extern int __rx_poll(int dev);
extern int __tick_enter(void);
int push_out(int p);
int dev_no(void);
int step(void) {
    int p = __rx_poll(dev_no());
    if (p == 0) { return 0; }
    __tick_enter();
    struct pkt *k = p;
    k->paint = dev_no();
    push_out(p);
    return 1;
}
`

// srcClassifier dispatches on the packet kind with direct comparisons.
// (Click's *generic* pattern-interpreting Classifier — the one its "fast
// classifier" optimization replaces — lives in internal/click; Clack
// components are written directly against the Knit interfaces, §5.2.)
const srcClassifier = srcPktH + `
int push_ip(int p);
int push_arp(int p);
int push_other(int p);
int push(int p) {
    struct pkt *k = p;
    if (k->kind == 2) { return push_arp(p); }
    if (k->kind == 3) { return push_other(p); }
    return push_ip(p);
}
`

// srcClassifierSafe is Classifier's declared fallback: a conservative
// dispatcher that only forwards the kinds it positively recognizes and
// routes anything else to the discard path, so a degraded router keeps
// serving (and accounting for) every packet. Its initializer exists so
// fault-injection tests can fail a fallback swap mid-flight.
const srcClassifierSafe = srcPktH + `
int push_ip(int p);
int push_arp(int p);
int push_other(int p);
static int engaged;
void safe_init(void) { engaged = 1; }
int safe_push(int p) {
    struct pkt *k = p;
    if (k->kind == 0) { return push_ip(p); }
    if (k->kind == 2) { return push_arp(p); }
    return push_other(p);
}
`

// srcClassifierV2 is the live-upgrade replacement for Classifier:
// identical ports and routing, with the common case (plain IP) tested
// first and an initializer guard — an uninitialized V2 degrades to the
// discard path instead of misrouting, so a botched upgrade loses
// goodput visibly rather than corrupting flows. It deliberately keeps
// Classifier's renames (and no in.push rename), so consumers' generated
// code is byte-identical and the config diff stays minimal.
const srcClassifierV2 = srcPktH + `
int push_ip(int p);
int push_arp(int p);
int push_other(int p);
static int ready;
void v2_init(void) { ready = 1; }
int push(int p) {
    struct pkt *k = p;
    if (ready == 0) { return push_other(p); }
    if (k->kind == 0) { return push_ip(p); }
    if (k->kind == 2) { return push_arp(p); }
    if (k->kind == 3) { return push_other(p); }
    return push_ip(p);
}
`

// srcClassifierBad is the injected-regression classifier for canary
// testing: it serves a few packets, then every call reads far out of
// bounds — an attributed bad-address trap. It loads and links cleanly;
// only the SLO window can catch it.
const srcClassifierBad = srcPktH + `
int push_ip(int p);
int push_arp(int p);
int push_other(int p);
static int served;
int push(int p) {
    struct pkt *k = p;
    served++;
    if (served > 3) { return k->payload[1000000000]; }
    if (k->kind == 2) { return push_arp(p); }
    if (k->kind == 3) { return push_other(p); }
    return push_ip(p);
}
`

// srcARPResponder turns an ARP request around: it rewrites the packet
// into a reply addressed to the requester and pushes it toward the
// egress queue.
const srcARPResponder = srcPktH + `
int push_out(int p);
int push(int p) {
    struct pkt *k = p;
    k->kind = 4;
    int tmp = k->src;
    k->src = k->dst;
    k->dst = tmp;
    k->ttl = 64;
    k->checksum = k->dst;
    for (int i = 0; i < 8; i++) {
        k->checksum = k->checksum + k->payload[i];
    }
    k->checksum = (k->checksum & 65535) + (k->checksum >> 16);
    return push_out(p);
}
`

// srcCheckIPHeader validates TTL and checksum, dropping bad packets —
// Click's CheckIPHeader. The checksum covers the TTL, like the real IP
// header checksum.
const srcCheckIPHeader = srcPktH + `
int push_out(int p);
int push_bad(int p);
int push(int p) {
    struct pkt *k = p;
    if (k->ttl <= 0) { return push_bad(p); }
    int sum = k->ttl + k->dst;
    for (int i = 0; i < 8; i++) {
        sum = sum + k->payload[i];
    }
    sum = (sum & 65535) + (sum >> 16);
    if (sum != k->checksum) { return push_bad(p); }
    return push_out(p);
}
`

// srcLookupIPRoute does a linear route lookup (Click's LookupIPRoute
// over a small static table) and pushes to the matching port.
const srcLookupIPRoute = srcPktH + `
int push_port0(int p);
int push_port1(int p);
static int routes[8];
static int nroutes = 0;
void route_init(void) {
    routes[0] = 10; routes[1] = 0;
    routes[2] = 20; routes[3] = 1;
    routes[4] = 30; routes[5] = 0;
    routes[6] = 0;  routes[7] = 1;
    nroutes = 4;
}
int push(int p) {
    struct pkt *k = p;
    int net = k->dst / 256;
    int port = 1;
    for (int r = 0; r < nroutes; r++) {
        if (routes[r * 2] == net || routes[r * 2] == 0) {
            port = routes[r * 2 + 1];
            break;
        }
    }
    k->paint = port;
    if (port == 0) { return push_port0(p); }
    return push_port1(p);
}
`

// srcDecIPTTL decrements the TTL, sending expired packets to the error
// path.
const srcDecIPTTL = srcPktH + `
int push_out(int p);
int push_expired(int p);
int push(int p) {
    struct pkt *k = p;
    k->ttl = k->ttl - 1;
    if (k->ttl <= 0) { return push_expired(p); }
    return push_out(p);
}
`

// srcFixIPChecksum updates the checksum incrementally after the TTL
// decrement (the RFC 1624 trick real IP forwarders use: no second pass
// over the packet).
const srcFixIPChecksum = srcPktH + `
int push_out(int p);
int push(int p) {
    struct pkt *k = p;
    int c = k->checksum - 1;
    if (c <= 0) { c = c + 65535; }
    k->checksum = c;
    return push_out(p);
}
`

// srcEthEncap rewrites the link-layer source address for the egress
// interface (Click's EtherEncap, word-model style).
const srcEthEncap = srcPktH + `
int push_out(int p);
int dev_no(void);
int push(int p) {
    struct pkt *k = p;
    k->src = 1000 + dev_no();
    return push_out(p);
}
`

// srcQueue buffers the packet address then forwards — the push-through
// analogue of Click's Queue (Clack's graph is all-push).
const srcQueue = srcPktH + `
int push_out(int p);
static int ring[16];
static int head = 0;
static int tail = 0;
int queue_len(void) { return tail - head; }
int push(int p) {
    ring[tail % 16] = p;
    tail++;
    int q = ring[head % 16];
    head++;
    return push_out(q);
}
`

// srcCounter counts packets through it.
const srcCounter = srcPktH + `
int push_out(int p);
static int count = 0;
int counter_read(void) { return count; }
int push(int p) {
    count++;
    return push_out(p);
}
`

// srcToDevice closes the measurement window and hands the packet to the
// transmit ring.
const srcToDevice = srcPktH + `
extern int __tx(int dev, int p);
extern int __tick_exit(void);
int dev_no(void);
int push(int p) {
    __tick_exit();
    return __tx(dev_no(), p);
}
`

// srcDiscard drops the packet (the end of the error path).
const srcDiscard = srcPktH + `
extern int __drop(int p);
extern int __tick_exit(void);
int push(int p) {
    __tick_exit();
    return __drop(p);
}
`

// srcPullQueue is a true Click-style queue: the push side enqueues and
// returns; the pull side dequeues on demand. It decouples the push path
// from the transmit path, unlike the pass-through Queue the standard
// all-push router uses.
const srcPullQueue = srcPktH + `
static int ring[32];
static int head = 0;
static int tail = 0;
int push(int p) {
    if (tail - head >= 32) { return -1; }
    ring[tail % 32] = p;
    tail++;
    return 0;
}
int pull(void) {
    if (head == tail) { return 0; }
    int p = ring[head % 32];
    head++;
    return p;
}
`

// srcToDevicePull drains a pull-side queue into the transmit ring; the
// driver calls drain() after each batch of pushes, Click's
// ToDevice-scheduling pattern.
const srcToDevicePull = srcPktH + `
extern int __tx(int dev, int p);
extern int __tick_exit(void);
int pull(void);
int dev_no(void);
int drain(void) {
    int n = 0;
    while (1) {
        int p = pull();
        if (p == 0) { break; }
        __tick_exit();
        __tx(dev_no(), p);
        n++;
    }
    return n;
}
`

// genOSWork generates the "rest of the kernel": the ethernet driver and
// housekeeping code that runs between packets on a real router. Its only
// modelled effect is instruction-cache pressure — its large straight-line
// footprint evicts router code between packets, exactly the environment
// in which the paper measured Table 1 (a ~100 KB kernel against an 8 KB
// I-cache). It runs outside the per-packet measurement window and is
// identical in every variant.
func genOSWork() string {
	var b strings.Builder
	b.WriteString("static int pool[512];\nint os_work(void) {\n    int s = 0;\n")
	for i := 0; i < 320; i++ {
		fmt.Fprintf(&b, "    s += pool[%d];\n", i)
	}
	b.WriteString("    return s;\n}\n")
	return b.String()
}

// ElementSources maps file names to element implementations.
func ElementSources() link.Sources {
	return link.Sources{
		"oswork.c":         genOSWork(),
		"fromdevice.c":     srcFromDevice,
		"classifier.c":     srcClassifier,
		"classifiersafe.c": srcClassifierSafe,
		"classifierv2.c":   srcClassifierV2,
		"classifierbad.c":  srcClassifierBad,
		"arpresponder.c":   srcARPResponder,
		"checkipheader.c":  srcCheckIPHeader,
		"lookupiproute.c":  srcLookupIPRoute,
		"deciipttl.c":      srcDecIPTTL,
		"fixipchecksum.c":  srcFixIPChecksum,
		"ethencap.c":       srcEthEncap,
		"queue.c":          srcQueue,
		"counter.c":        srcCounter,
		"todevice.c":       srcToDevice,
		"discard.c":        srcDiscard,
		"pullqueue.c":      srcPullQueue,
		"todevicepull.c":   srcToDevicePull,
		"devno0.c":         "int dev_no(void) { return 0; }\n",
		"devno1.c":         "int dev_no(void) { return 1; }\n",
	}
}

// ElementUnits is the unit-language description of the element library.
// Every element imports its output ports (Push bundles) and exports its
// input port; FromDevice exports a Step bundle the driver polls.
const ElementUnits = `
bundletype Push   = { push }
bundletype Step   = { step }
bundletype DevNo  = { dev_no }
bundletype Stat   = { counter_read }
bundletype Main   = { kmain }
bundletype OsWork = { os_work }

unit OSWork = {
  exports [ osw : OsWork ];
  files { "oswork.c" };
}

unit DevNo0 = {
  exports [ dev : DevNo ];
  files { "devno0.c" };
}
unit DevNo1 = {
  exports [ dev : DevNo ];
  files { "devno1.c" };
}

unit FromDevice = {
  imports [ out : Push, dev : DevNo ];
  exports [ src : Step ];
  depends { src needs (out + dev); };
  files { "fromdevice.c" };
  rename { out.push to push_out; };
}

unit Classifier = {
  imports [ ip : Push, arp : Push, other : Push ];
  exports [ in : Push ];
  depends { in needs (ip + arp + other); };
  fallback ClassifierSafe;
  files { "classifier.c" };
  rename {
    ip.push to push_ip;
    arp.push to push_arp;
    other.push to push_other;
  };
}

// ClassifierSafe is the supervision layer's degraded-mode stand-in for
// Classifier: identical ports, conservative dispatch. A supervisor that
// exhausts Classifier's restart budget loads it dynamically and
// interposes it over the failing instance's exports.
unit ClassifierSafe = {
  imports [ ip : Push, arp : Push, other : Push ];
  exports [ in : Push ];
  initializer safe_init for in;
  depends { in needs (ip + arp + other); };
  files { "classifiersafe.c" };
  rename {
    ip.push to push_ip;
    arp.push to push_arp;
    other.push to push_other;
    in.push to safe_push;
  };
}

// ClassifierV2 is the live-reconfiguration upgrade target for
// Classifier: same ports, same renames, reordered dispatch behind an
// initializer guard. See srcClassifierV2.
unit ClassifierV2 = {
  imports [ ip : Push, arp : Push, other : Push ];
  exports [ in : Push ];
  initializer v2_init for in;
  depends { in needs (ip + arp + other); };
  fallback ClassifierSafe;
  files { "classifierv2.c" };
  rename {
    ip.push to push_ip;
    arp.push to push_arp;
    other.push to push_other;
  };
}

// ClassifierBad is the canary-rollback test subject: links and
// initializes cleanly, regresses under traffic. See srcClassifierBad.
unit ClassifierBad = {
  imports [ ip : Push, arp : Push, other : Push ];
  exports [ in : Push ];
  depends { in needs (ip + arp + other); };
  files { "classifierbad.c" };
  rename {
    ip.push to push_ip;
    arp.push to push_arp;
    other.push to push_other;
  };
}

unit ARPResponder = {
  imports [ out : Push ];
  exports [ in : Push ];
  depends { in needs out; };
  files { "arpresponder.c" };
  rename { out.push to push_out; };
}

unit CheckIPHeader = {
  imports [ out : Push, bad : Push ];
  exports [ in : Push ];
  depends { in needs (out + bad); };
  files { "checkipheader.c" };
  rename { out.push to push_out; bad.push to push_bad; };
}

unit LookupIPRoute = {
  imports [ port0 : Push, port1 : Push ];
  exports [ in : Push ];
  initializer route_init for in;
  depends { in needs (port0 + port1); };
  files { "lookupiproute.c" };
  rename { port0.push to push_port0; port1.push to push_port1; };
}

unit DecIPTTL = {
  imports [ out : Push, expired : Push ];
  exports [ in : Push ];
  depends { in needs (out + expired); };
  files { "deciipttl.c" };
  rename { out.push to push_out; expired.push to push_expired; };
}

unit FixIPChecksum = {
  imports [ out : Push ];
  exports [ in : Push ];
  depends { in needs out; };
  files { "fixipchecksum.c" };
  rename { out.push to push_out; };
}

unit EthEncap = {
  imports [ out : Push, dev : DevNo ];
  exports [ in : Push ];
  depends { in needs (out + dev); };
  files { "ethencap.c" };
  rename { out.push to push_out; };
}

unit Queue = {
  imports [ out : Push ];
  exports [ in : Push ];
  depends { in needs out; };
  files { "queue.c" };
  rename { out.push to push_out; };
}

unit Counter = {
  imports [ out : Push ];
  exports [ in : Push, stat : Stat ];
  depends { (in + stat) needs out; };
  files { "counter.c" };
  rename { out.push to push_out; };
}

unit ToDevice = {
  imports [ dev : DevNo ];
  exports [ in : Push ];
  depends { in needs dev; };
  files { "todevice.c" };
}

unit Discard = {
  exports [ in : Push ];
  files { "discard.c" };
}

// Pull-side elements (Click's push/pull duality): PullQueue's push side
// only enqueues; ToDevicePull drains it when the driver schedules it.
bundletype Pull  = { pull }
bundletype Drain = { drain }

unit PullQueue = {
  exports [ in : Push, out : Pull ];
  files { "pullqueue.c" };
}

unit ToDevicePull = {
  imports [ q : Pull, dev : DevNo ];
  exports [ sink : Drain ];
  depends { sink needs (q + dev); };
  files { "todevicepull.c" };
}
`
