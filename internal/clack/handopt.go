package clack

import "knit/internal/knit/link"

// This file is the Table 1 "hand optimized" router: the 24 modular
// components rewritten "in a less modular way: combining 24 separate
// components into just 2 components, converting the result to idiomatic
// C, and eliminating redundant data fetches" (§6). The IP fast path is
// one fused pass — classification by direct comparison, a single
// checksum loop reused for validation and the rewritten header — and the
// ARP/discard slow paths are a second component.

// The manual merge is conservative, as a human rewrite would be: the
// element algorithms are unchanged (the route lookup still walks its
// table), the code is shared generically across both devices (one
// handle(), runtime dev/port values, pooled queue rings) where the
// modular graph had per-device element instances. Its two genuine wins
// are structural: all calls become intra-file statics, and the payload
// is walked once instead of twice ("eliminating redundant data
// fetches"). What it cannot do — and Knit's flattening does — is
// specialize each device's chain and fold the per-instance constants.
// The merged file reads top-down, entry points first, the way a person
// rewrites a component stack: steps, then the big handle(), then the
// helpers. With a define-before-use inliner (gcc 2.95) that order leaves
// several helper calls un-inlined — one of the residual costs Knit's
// flattening (which sorts definitions callees-first) removes.
const srcHandPath = srcPktH + `
extern int __rx_poll(int dev);
extern int __tx(int dev, int p);
extern int __tick_enter(void);
extern int __tick_exit(void);
int push_arp(int p);
int push_disc(int p);
static int handle(int dev, int p);
static int route_lookup(int net);
static int payload_sum(struct pkt *k);
static int enqueue(int port, int p);

static int counts[2];
static int rings[32];
static int heads[2];
static int tails[2];
static int routes[8];
static int nroutes = 0;

static int step_dev(int dev) {
    int p = __rx_poll(dev);
    if (p == 0) { return 0; }
    __tick_enter();
    handle(dev, p);
    return 1;
}

int step0(void) { return step_dev(0); }
int step1(void) { return step_dev(1); }

static int handle(int dev, int p) {
    struct pkt *k = p;
    k->paint = dev;
    if (k->kind == 2) { return push_arp(p); }
    if (k->kind != 0) { return push_disc(p); }
    if (k->ttl <= 0) { return push_disc(p); }
    int sum = payload_sum(k);
    if (sum != k->checksum) { return push_disc(p); }
    int port = route_lookup(k->dst / 256);
    k->paint = port;
    k->ttl = k->ttl - 1;
    if (k->ttl <= 0) { return push_disc(p); }
    int c = sum - 1;
    if (c <= 0) { c = c + 65535; }
    k->checksum = c;
    k->src = 1000 + port;
    int q = enqueue(port, p);
    counts[port]++;
    __tick_exit();
    return __tx(port, q);
}

static int route_lookup(int net) {
    int port = 1;
    for (int r = 0; r < nroutes; r++) {
        if (routes[r * 2] == net || routes[r * 2] == 0) {
            port = routes[r * 2 + 1];
            break;
        }
    }
    return port;
}

static int payload_sum(struct pkt *k) {
    int sum = k->ttl + k->dst;
    for (int i = 0; i < 8; i++) {
        sum = sum + k->payload[i];
    }
    return (sum & 65535) + (sum >> 16);
}

static int enqueue(int port, int p) {
    rings[port * 16 + tails[port] % 16] = p;
    tails[port]++;
    int q = rings[port * 16 + heads[port] % 16];
    heads[port]++;
    return q;
}

int counter_read(void) { return counts[0] + counts[1]; }

void hand_init(void) {
    routes[0] = 10; routes[1] = 0;
    routes[2] = 20; routes[3] = 1;
    routes[4] = 30; routes[5] = 0;
    routes[6] = 0;  routes[7] = 1;
    nroutes = 4;
}
`

const srcHandARP = srcPktH + `
extern int __tx(int dev, int p);
extern int __drop(int p);
extern int __tick_exit(void);
int arp_push(int p) {
    struct pkt *k = p;
    k->kind = 4;
    int tmp = k->src;
    k->src = k->dst;
    k->dst = tmp;
    k->ttl = 64;
    int sum = k->dst;
    for (int i = 0; i < 8; i++) {
        sum = sum + k->payload[i];
    }
    k->checksum = (sum & 65535) + (sum >> 16);
    __tick_exit();
    return __tx(k->paint, p);
}
int disc_push(int p) {
    __tick_exit();
    return __drop(p);
}
`

const srcHandDriver = `
int step_0(void);
int step_1(void);
int os_work(void);
int kmain(int maxiter) {
    int n = 0;
    for (int i = 0; i < maxiter; i++) {
        int got = 0;
        got += step_0();
        os_work();
        got += step_1();
        os_work();
        if (got == 0) { break; }
        n += got;
    }
    return n;
}
`

// HandOptUnits declares the 2-component router and its driver; the top
// unit keeps the name ClackRouter so both variants build identically.
const HandOptUnits = `
unit HandPath = {
  imports [ arp : Push, disc : Push ];
  exports [ s0 : Step, s1 : Step, stat : Stat ];
  initializer hand_init for s0;
  depends { (s0 + s1 + stat) needs (arp + disc); };
  files { "handpath.c" };
  rename {
    s0.step to step0;
    s1.step to step1;
    arp.push to push_arp;
    disc.push to push_disc;
  };
}

unit HandARP = {
  exports [ arp : Push, disc : Push ];
  files { "handarp.c" };
  rename {
    arp.push to arp_push;
    disc.push to disc_push;
  };
}

unit RouterDriver = {
  imports [ s0 : Step, s1 : Step, osw : OsWork ];
  exports [ main : Main ];
  depends { main needs (s0 + s1 + osw); };
  files { "handdriver.c" };
  rename {
    s0.step to step_0;
    s1.step to step_1;
  };
}

unit ClackRouter = {
  exports [ main : Main ];
  link {
    [arp, disc] <- HandARP <- [];
    [s0, s1, hstat] <- HandPath <- [arp, disc];
    [osw] <- OSWork <- [];
    [main] <- RouterDriver <- [s0, s1, osw];
  };
}
`

// HandOptSources returns the hand-optimized router's sources.
func HandOptSources() link.Sources {
	return link.Sources{
		"handpath.c":   srcHandPath,
		"handarp.c":    srcHandARP,
		"handdriver.c": srcHandDriver,
	}
}
