package clack

import (
	"fmt"
	"math/rand"

	"knit/internal/knit/build"
	"knit/internal/knit/build/faultinject"
	"knit/internal/knit/fleet"
	"knit/internal/knit/observe"
	"knit/internal/knit/supervise"
	"knit/internal/machine"
)

// This file is the sharded serving mode: one built router image, N
// machine+supervisor+collector shards behind the fleet's flow-hash
// balancer. Each shard owns a private pair of simulated NICs; a flow is
// pinned to one shard (fleet.FlowShard) and to one ingress device
// within it (fleet.FlowLane), so a flow's packets traverse exactly one
// machine in arrival order. The router graph is all-push — a packet
// runs to completion before the next is polled — which makes per-flow
// transmit order equal per-flow arrival order; the __tx builtin checks
// that invariant on every transmitted packet via per-flow sequence
// numbers the generator stamps into the payload (payload words ride
// through every element untouched).

// FlowSpec describes flow-structured traffic: spec.Flows distinct flow
// keys with Zipf(Skew) popularity, each flow owning a fixed
// (src, dst) pair — so its route is stable — and carrying per-flow
// sequence numbers. The slow-path mix mirrors TrafficSpec.
type FlowSpec struct {
	Packets     int
	Flows       int     // distinct flow keys (>= 1)
	Skew        float64 // Zipf s parameter (> 1); 0 means uniform flows
	ARPEvery    int     // every n-th packet is an ARP request (0 = none)
	OtherEvery  int     // every n-th packet is unclassifiable
	BadSumEvery int     // every n-th packet has a corrupt checksum
	LowTTLEvery int     // every n-th packet arrives with TTL 1
	Seed        int64
}

// DefaultFlowTraffic is DefaultTraffic's flow-structured sibling: the
// same slow-path mix over 256 flows with a mild Zipf skew.
func DefaultFlowTraffic(n int) FlowSpec {
	return FlowSpec{Packets: n, Flows: 256, Skew: 1.05, ARPEvery: 10,
		OtherEvery: 37, BadSumEvery: 41, LowTTLEvery: 43, Seed: 1}
}

// FlowPacket is one generated packet tagged with its flow key.
type FlowPacket struct {
	Flow uint64
	Pkt  Packet
}

// Payload word roles for flow traffic. The router never writes payload
// words, so both survive to the transmit ring on every path (the ARP
// responder swaps src/dst, which is why the flow identity rides in the
// payload instead).
const (
	payloadFlowWord = 6 // Payload[6]: flow key
	payloadSeqWord  = 7 // Payload[7]: per-flow sequence, from 1
)

// Generate builds the packet stream. Deterministic for a given spec:
// same flows, same sequence numbers, same mix.
func (spec FlowSpec) Generate() []FlowPacket {
	r := rand.New(rand.NewSource(spec.Seed))
	flows := spec.Flows
	if flows < 1 {
		flows = 1
	}
	var zipf *rand.Zipf
	if spec.Skew > 1 {
		zipf = rand.NewZipf(r, spec.Skew, 1, uint64(flows-1))
	}
	// Per-flow constants: src identifies the flow on the wire; dst picks
	// a stable route (networks 10/20/30/77 as in TrafficSpec.Generate).
	nets := []int64{10, 20, 30, 77}
	seq := make([]int64, flows)
	every := func(n, i int) bool { return n > 0 && i%n == n-1 }
	out := make([]FlowPacket, 0, spec.Packets)
	for i := 0; i < spec.Packets; i++ {
		var flow uint64
		if zipf != nil {
			flow = zipf.Uint64()
		} else {
			flow = uint64(r.Intn(flows))
		}
		seq[flow]++
		var p Packet
		p.TTL = int64(4 + r.Intn(60))
		p.Src = 1 + int64(flow)
		p.Dst = nets[flow%uint64(len(nets))]*256 + int64(flow%256)
		for j := range p.Payload {
			p.Payload[j] = int64(r.Intn(1 << 15))
		}
		p.Payload[payloadFlowWord] = int64(flow)
		p.Payload[payloadSeqWord] = seq[flow]
		p.Checksum = fold(p.TTL, p.Dst, p.Payload)
		switch {
		case every(spec.ARPEvery, i):
			p.Kind = KindARP
		case every(spec.OtherEvery, i):
			p.Kind = KindOther
		case every(spec.BadSumEvery, i):
			p.Kind = KindIP
			p.Checksum ^= 0x5a5a
		case every(spec.LowTTLEvery, i):
			p.Kind = KindIP
			p.TTL = 1
		default:
			p.Kind = KindIP
		}
		out = append(out, FlowPacket{Flow: flow, Pkt: p})
	}
	return out
}

// shardIO is one shard's host-side NIC state: the ingress queues its
// handler fills, the device statistics, and the per-flow order check.
// It lives and dies with one machine boot; ServeFleet folds retired
// generations into per-shard totals at respawn.
type shardIO struct {
	rx    [2][]Packet
	head  [2]int
	stats DeviceStats
	// lastSeq tracks the highest sequence transmitted per flow; a
	// transmit at or below it is an ordering violation.
	lastSeq map[int64]int64
	// oracle, when set, replaces lastSeq with a fleet-global order check
	// that survives respawns and follows a flow across a re-steer — the
	// overload rig's end-to-end ordering proof.
	oracle          *orderOracle
	orderViolations int
	faults          int
	calls           int
}

func (io *shardIO) remaining() int {
	return (len(io.rx[0]) - io.head[0]) + (len(io.rx[1]) - io.head[1])
}

// installShardDevices mirrors InstallDevices but reads from refillable
// per-shard queues and verifies per-flow transmit order.
func installShardDevices(m *machine.M, io *shardIO) {
	bufAddr := func(dev int64) int64 {
		return int64(len(m.Mem)) - (dev+1)*PktWords
	}
	m.RegisterBuiltin("__rx_poll", func(mm *machine.M, args []int64) (int64, error) {
		dev := args[0]
		if dev < 0 || dev > 1 {
			return 0, fmt.Errorf("clack: rx on bad device %d", dev)
		}
		if io.head[dev] >= len(io.rx[dev]) {
			return 0, nil
		}
		p := io.rx[dev][io.head[dev]]
		io.head[dev]++
		io.stats.Rx[dev]++
		addr := bufAddr(dev)
		if err := mm.WriteWords(addr, p.words()); err != nil {
			return 0, err
		}
		return addr, nil
	})
	m.RegisterBuiltin("__tx", func(mm *machine.M, args []int64) (int64, error) {
		dev, addr := args[0], args[1]
		if dev < 0 || dev > 1 {
			return 0, fmt.Errorf("clack: tx on bad device %d", dev)
		}
		io.stats.Tx[dev]++
		kind := mm.Mem[addr]
		ttl := mm.Mem[addr+1]
		if kind == KindIP {
			if ttl <= 0 {
				io.stats.TxBad = append(io.stats.TxBad,
					fmt.Sprintf("tx dev%d: IP packet with ttl %d", dev, ttl))
			} else {
				io.stats.TxTTLOK++
			}
		}
		flow := mm.Mem[addr+6+payloadFlowWord]
		seq := mm.Mem[addr+6+payloadSeqWord]
		if io.oracle != nil {
			if !io.oracle.check(flow, seq) {
				io.orderViolations++
			}
		} else {
			if seq <= io.lastSeq[flow] {
				io.orderViolations++
			}
			io.lastSeq[flow] = seq
		}
		return 0, nil
	})
	m.RegisterBuiltin("__drop", func(mm *machine.M, args []int64) (int64, error) {
		io.stats.Dropped++
		return 0, nil
	})
}

// ShardServeStats is one shard's cumulative serving record, summed over
// every machine generation the shard went through.
type ShardServeStats struct {
	Rx, Tx, Dropped int
	Faults          int // supervised kmain calls that ended in a handled fault
	Calls           int // supervised kmain calls driven
	OrderViolations int
	Restarts        int // supervisor restarts inside the shard
	Swaps           int // fallback swaps inside the shard
	Respawns        int // whole-machine respawns from the fleet snapshot
}

// FleetReport summarizes a sharded serving run.
type FleetReport struct {
	Shards   int
	Rx       int
	Tx       int
	Dropped  int
	Goodput  float64 // (Tx + Dropped) / Rx, fleet-wide
	PerShard []ShardServeStats
	// OrderViolations counts per-flow sequence inversions observed at
	// transmit, fleet-wide. The flow-hash design makes this 0.
	OrderViolations int
	// Converged reports every shard's supervisor ended with all
	// instances serving (healthy or degraded), and no shard died.
	Converged bool
	Statuses  [][]supervise.InstanceStatus
	// Metrics is the fleet-wide roll-up of every shard's collector,
	// retired generations included.
	Metrics *observe.Report
}

// serveRig is the host side of a serving fleet — per-shard NIC queues,
// generation totals, the fleet Setup and batch handler, and report
// assembly — shared by ServeFleet and ServeFleetUpgrade so a live
// reconfiguration serves through exactly the machinery a plain run
// does.
type serveRig struct {
	// ios holds each shard's current-generation IO; totals accumulate
	// retired generations at respawn time (Setup runs again on the same
	// ID).
	ios        []*shardIO
	totals     []ShardServeStats
	faultEvery int
	victimSym  string
}

func newServeRig(res *build.Result, shards, faultEvery int) (*serveRig, error) {
	if shards < 1 {
		return nil, fmt.Errorf("clack: fleet needs at least 1 shard, got %d", shards)
	}
	rg := &serveRig{
		ios:        make([]*shardIO, shards),
		totals:     make([]ShardServeStats, shards),
		faultEvery: faultEvery,
	}
	if faultEvery > 0 {
		victim := FirstInstanceOf(res, "Classifier")
		if victim == nil {
			return nil, fmt.Errorf("clack: no Classifier instance to inject faults into")
		}
		rg.victimSym = victim.ExportSyms["in"]["push"]
	}
	return rg, nil
}

func (rg *serveRig) retire(id int) {
	io := rg.ios[id]
	if io == nil {
		return
	}
	rg.totals[id].Rx += io.stats.Rx[0] + io.stats.Rx[1]
	rg.totals[id].Tx += io.stats.Tx[0] + io.stats.Tx[1]
	rg.totals[id].Dropped += io.stats.Dropped
	rg.totals[id].Faults += io.faults
	rg.totals[id].Calls += io.calls
	rg.totals[id].OrderViolations += io.orderViolations
}

func (rg *serveRig) setup(id int, m *machine.M) error {
	machine.InstallStopWatch(m)
	if id == fleet.Prototype {
		// The prototype only runs the init schedule; give it inert
		// devices in case an initializer touches them.
		installShardDevices(m, &shardIO{lastSeq: map[int64]int64{}})
		return nil
	}
	rg.retire(id)
	rg.ios[id] = &shardIO{lastSeq: map[int64]int64{}}
	installShardDevices(m, rg.ios[id])
	if rg.faultEvery > 0 && id == 0 {
		faultinject.Attach(m).TrapCallEvery(rg.victimSym, rg.faultEvery)
	}
	return nil
}

func (rg *serveRig) handler(sh *fleet.Shard[FlowPacket], batch []FlowPacket) error {
	io := rg.ios[sh.ID]
	for _, fp := range batch {
		lane := fleet.FlowLane(fp.Flow, 2)
		io.rx[lane] = append(io.rx[lane], fp.Pkt)
	}
	// Drive kmain one iteration at a time (a fault costs at most the
	// packets in flight) until the ingress queues are dry. The bound
	// mirrors ServeSupervised: a healthy or degraded shard consumes
	// at least one packet per iteration; only a machine the
	// supervisor has given up on (dead instance, every call failing)
	// exhausts it, and that is exactly the respawn case.
	limit := io.calls + 4*len(batch) + 64
	for io.remaining() > 0 {
		if io.calls >= limit {
			return fmt.Errorf("no progress after %d kmain calls (%d packets stuck)",
				limit, io.remaining())
		}
		io.calls++
		if _, err := sh.Sup.Call("main", "kmain", 1); err != nil {
			io.faults++
		}
	}
	return nil
}

func (rg *serveRig) report(fl *fleet.Fleet[FlowPacket], closeErr error) *FleetReport {
	rep := &FleetReport{Shards: len(rg.totals), Converged: closeErr == nil}
	rep.Statuses = fl.Statuses()
	rep.Metrics = fl.Report()
	for id, sh := range fl.Shards() {
		rg.retire(id)
		rg.ios[id] = nil
		st := rg.totals[id]
		st.Respawns = sh.Respawns()
		for _, is := range rep.Statuses[id] {
			st.Restarts += is.Restarts
			st.Swaps += is.Swaps
			if is.State != supervise.Healthy && is.State != supervise.Degraded {
				rep.Converged = false
			}
		}
		rep.PerShard = append(rep.PerShard, st)
		rep.Rx += st.Rx
		rep.Tx += st.Tx
		rep.Dropped += st.Dropped
		rep.OrderViolations += st.OrderViolations
	}
	if rep.Rx > 0 {
		rep.Goodput = float64(rep.Tx+rep.Dropped) / float64(rep.Rx)
	}
	return rep
}

// ServeFleet serves flow-structured traffic over a sharded router
// fleet. Every shard runs the same built image; faultEvery > 0 arms a
// fault injector on shard 0's Classifier only — the blast-radius
// scenario: that shard's supervisor restarts and then swaps in
// ClassifierSafe while the siblings' counters stay untouched.
func ServeFleet(res *build.Result, spec FlowSpec, shards int, pol *supervise.Policy,
	clk func(int) supervise.Clock, faultEvery int) (*FleetReport, error) {

	rg, err := newServeRig(res, shards, faultEvery)
	if err != nil {
		return nil, err
	}
	fl, err := fleet.New[FlowPacket](res, fleet.Config{
		Shards: shards,
		Policy: pol,
		Clock:  clk,
		Setup:  rg.setup,
	}, rg.handler)
	if err != nil {
		return nil, err
	}
	for _, fp := range spec.Generate() {
		fl.Submit(fp.Flow, fp)
	}
	return rg.report(fl, fl.Close()), nil
}
