package clack

import (
	"strings"
	"testing"
)

func TestParseStandardConfig(t *testing.T) {
	g, err := ParseConfig(StandardRouterConfig)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(g.Elements) != 22 {
		// 22 declared elements + 2 generated DevNo providers = 24
		// router components (checked in TestClackComponentCensus).
		t.Errorf("elements = %d, want 22", len(g.Elements))
	}
	if len(g.Sources()) != 2 {
		t.Errorf("sources = %d, want 2", len(g.Sources()))
	}
	if len(g.Counters()) != 2 {
		t.Errorf("counters = %d, want 2", len(g.Counters()))
	}
}

func TestClackComponentCensus(t *testing.T) {
	// Table 1's caption: the modular router is 24 separate components.
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatal(err)
	}
	router := 0
	for _, inst := range res.Program.Instances {
		if inst.Unit.Name != "RouterDriver" && inst.Unit.Name != "OSWork" {
			router++
		}
	}
	if router != 24 {
		for _, inst := range res.Program.Instances {
			t.Logf("instance: %s (%s)", inst.Path, inst.Unit.Name)
		}
		t.Errorf("router components = %d, want 24", router)
	}
}

func TestModularRouterForwards(t *testing.T) {
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatal(err)
	}
	meas, err := RunRouter(res, DefaultTraffic(200))
	if err != nil {
		t.Fatal(err)
	}
	if meas.Packets != 200 {
		t.Errorf("measured windows = %d, want 200", meas.Packets)
	}
	if meas.Forwarded == 0 || meas.Dropped == 0 {
		t.Errorf("forwarded=%d dropped=%d; traffic should exercise both paths",
			meas.Forwarded, meas.Dropped)
	}
	if meas.Forwarded+meas.Dropped != 200 {
		t.Errorf("forwarded %d + dropped %d != 200", meas.Forwarded, meas.Dropped)
	}
	if meas.CyclesPerPk <= 0 {
		t.Error("no cycles measured")
	}
}

func TestAllVariantsAgreeOnBehavior(t *testing.T) {
	spec := DefaultTraffic(300)
	var base *Measurement
	for _, v := range []Variant{{}, {Flattened: true}, {HandOptimized: true},
		{HandOptimized: true, Flattened: true}} {
		meas, err := MeasureVariant(v, spec)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if base == nil {
			base = meas
			continue
		}
		if meas.Forwarded != base.Forwarded || meas.Dropped != base.Dropped ||
			meas.Stats.TxTTLOK != base.Stats.TxTTLOK ||
			meas.Stats.Tx[0] != base.Stats.Tx[0] || meas.Stats.Tx[1] != base.Stats.Tx[1] {
			t.Errorf("%s behaves differently from modular: %+v vs %+v",
				meas.Variant, meas.Stats, base.Stats)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	spec := DefaultTraffic(400)
	get := func(v Variant) *Measurement {
		m, err := MeasureVariant(v, spec)
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		return m
	}
	modular := get(Variant{})
	hand := get(Variant{HandOptimized: true})
	flat := get(Variant{Flattened: true})
	both := get(Variant{HandOptimized: true, Flattened: true})

	t.Logf("modular:  %.0f cycles, %.0f stalls, %d bytes", modular.CyclesPerPk, modular.StallsPerPk, modular.TextBytes)
	t.Logf("hand:     %.0f cycles, %.0f stalls, %d bytes", hand.CyclesPerPk, hand.StallsPerPk, hand.TextBytes)
	t.Logf("flat:     %.0f cycles, %.0f stalls, %d bytes", flat.CyclesPerPk, flat.StallsPerPk, flat.TextBytes)
	t.Logf("both:     %.0f cycles, %.0f stalls, %d bytes", both.CyclesPerPk, both.StallsPerPk, both.TextBytes)

	// Table 1's ordering: modular > hand > flattened > both.
	if !(modular.CyclesPerPk > hand.CyclesPerPk) {
		t.Errorf("hand optimization should beat modular: %.0f vs %.0f",
			hand.CyclesPerPk, modular.CyclesPerPk)
	}
	if !(hand.CyclesPerPk > flat.CyclesPerPk) {
		t.Errorf("flattening should beat hand optimization: %.0f vs %.0f",
			flat.CyclesPerPk, hand.CyclesPerPk)
	}
	if !(flat.CyclesPerPk >= both.CyclesPerPk) {
		t.Errorf("hand+flat should be at least as fast as flat: %.0f vs %.0f",
			both.CyclesPerPk, flat.CyclesPerPk)
	}
}

func TestConfigErrors(t *testing.T) {
	cases := []struct{ name, cfg, want string }{
		{"unknown class", "x :: Bogus;", "unknown element class"},
		{"redeclared", "x :: Discard; x :: Discard;", "redeclared"},
		{"unknown element", "x :: Discard; y -> x;", "unknown element"},
		{"unconnected port", "f :: FromDevice(0);", "not connected"},
		{"bad port", "d :: Discard; q :: Queue; q [3] -> d; ", "output ports"},
		{"double connect", "q :: Queue; a :: Discard; b :: Discard; q -> a; q -> b;", "connected twice"},
		{"into source", "q :: Queue; f :: FromDevice(0); q -> f; f -> q;", "no input"},
		{"empty", "  ", "empty configuration"},
		{"garbage", "hello world;", "cannot parse"},
		{"bad device", "f :: FromDevice(7); d :: Discard; f -> d;", "not available"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g, err := ParseConfig(c.cfg)
			if err == nil {
				_, _, _, err = g.CompileToKnit("X")
			}
			if err == nil {
				t.Fatalf("config accepted, want error containing %q", c.want)
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestSimpleCountDiscardConfig(t *testing.T) {
	// The paper's first Click example: FromDevice(0) -> Counter -> Discard.
	cfg := `
src :: FromDevice(0);
cnt :: Counter;
sink :: Discard;
src -> cnt -> sink;
`
	g, err := ParseConfig(cfg)
	if err != nil {
		t.Fatal(err)
	}
	units, sources, top, err := g.CompileToKnit("CountRouter")
	if err != nil {
		t.Fatal(err)
	}
	if top != "CountRouter" {
		t.Errorf("top = %q", top)
	}
	full := ElementUnits + units
	for k, v := range ElementSources() {
		sources[k] = v
	}
	res, err := buildFromParts(full, sources, top)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m := res.NewMachine()
	streams := DefaultTraffic(50).Generate()
	stats := InstallDevices(m, streams)
	installTicks(m)
	if _, err := res.Run(m, "main", "kmain", 100); err != nil {
		t.Fatal(err)
	}
	// Only device 0's stream is consumed, and everything is discarded.
	if stats.Rx[0] != 25 || stats.Rx[1] != 0 {
		t.Errorf("rx = %v", stats.Rx)
	}
	if stats.Dropped != 25 {
		t.Errorf("dropped = %d, want 25", stats.Dropped)
	}
}
