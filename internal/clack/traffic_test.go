package clack

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestFoldMatchesElementChecksum(t *testing.T) {
	// The generator's fold must agree with CheckIPHeader's computation:
	// a generated "valid" packet must pass the element. Property-based
	// over random payloads.
	fn := func(ttl uint8, dst uint16, payload [8]int32) bool {
		var p Packet
		p.Kind = KindIP
		p.TTL = int64(ttl%60) + 1
		p.Dst = int64(dst)
		for i, v := range payload {
			p.Payload[i] = int64(v & 0x7fff)
		}
		p.Checksum = fold(p.TTL, p.Dst, p.Payload)
		// Recompute the way checkipheader.c does.
		sum := p.TTL + p.Dst
		for _, v := range p.Payload {
			sum += v
		}
		sum = (sum & 65535) + (sum >> 16)
		return sum == p.Checksum
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestGenerateDeterministicAndMixed(t *testing.T) {
	spec := DefaultTraffic(500)
	a := spec.Generate()
	b := spec.Generate()
	for dev := 0; dev < 2; dev++ {
		if len(a[dev]) != len(b[dev]) {
			t.Fatalf("dev %d lengths differ", dev)
		}
		for i := range a[dev] {
			if a[dev][i] != b[dev][i] {
				t.Fatalf("dev %d packet %d differs between runs", dev, i)
			}
		}
	}
	if len(a[0])+len(a[1]) != 500 {
		t.Errorf("total packets = %d", len(a[0])+len(a[1]))
	}
	kinds := map[int64]int{}
	badSum, lowTTL := 0, 0
	for dev := 0; dev < 2; dev++ {
		for _, p := range a[dev] {
			kinds[p.Kind]++
			if p.Kind == KindIP {
				if p.Checksum != fold(p.TTL, p.Dst, p.Payload) {
					badSum++
				}
				if p.TTL == 1 {
					lowTTL++
				}
			}
		}
	}
	if kinds[KindIP] == 0 || kinds[KindARP] == 0 || kinds[KindOther] == 0 {
		t.Errorf("kind mix missing some path: %v", kinds)
	}
	if badSum == 0 {
		t.Error("no bad-checksum packets generated")
	}
	if lowTTL == 0 {
		t.Error("no low-TTL packets generated")
	}
}

func TestInstallDevicesBookkeeping(t *testing.T) {
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.NewMachine()
	spec := DefaultTraffic(120)
	streams := spec.Generate()
	stats := InstallDevices(m, streams)
	installTicks(m)
	if _, err := res.Run(m, "main", "kmain", 200); err != nil {
		t.Fatal(err)
	}
	if stats.Rx[0] != len(streams[0]) || stats.Rx[1] != len(streams[1]) {
		t.Errorf("rx %v vs streams %d/%d", stats.Rx, len(streams[0]), len(streams[1]))
	}
	if stats.Forwardable() != stats.Tx[0]+stats.Tx[1] {
		t.Errorf("forwardable accounting inconsistent")
	}
	if stats.Tx[0]+stats.Tx[1]+stats.Dropped != 120 {
		t.Errorf("tx %v + dropped %d != 120", stats.Tx, stats.Dropped)
	}
	if len(stats.TxBad) != 0 {
		t.Errorf("malformed transmissions: %v", stats.TxBad)
	}
	if stats.TxTTLOK == 0 {
		t.Error("no forwarded IP packets observed")
	}
}

func TestExpectedRouting(t *testing.T) {
	// Host-side model of the router's decisions must match the simulated
	// router exactly: predict per-device tx and drops from the spec.
	spec := DefaultTraffic(250)
	streams := spec.Generate()
	wantTx := [2]int{}
	wantDrop := 0
	for dev := 0; dev < 2; dev++ {
		for _, p := range streams[dev] {
			switch p.Kind {
			case KindARP:
				wantTx[dev]++ // replied out the ingress device
			case KindOther:
				wantDrop++
			case KindIP:
				valid := p.Checksum == fold(p.TTL, p.Dst, p.Payload)
				if !valid || p.TTL <= 1 {
					wantDrop++
					continue
				}
				net := p.Dst / 256
				port := 1
				if net == 10 || net == 30 {
					port = 0
				}
				wantTx[port]++
			}
		}
	}
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatal(err)
	}
	m := res.NewMachine()
	stats := InstallDevices(m, streams)
	installTicks(m)
	if _, err := res.Run(m, "main", "kmain", 300); err != nil {
		t.Fatal(err)
	}
	if stats.Tx != wantTx || stats.Dropped != wantDrop {
		t.Errorf("router tx=%v drop=%d; host model predicts tx=%v drop=%d",
			stats.Tx, stats.Dropped, wantTx, wantDrop)
	}
}

func TestDeviceErrors(t *testing.T) {
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatal(err)
	}
	// A config asking for a bad device is rejected at compile-to-knit
	// time; here verify the builtin-level guard with a direct call.
	m := res.NewMachine()
	InstallDevices(m, [2][]Packet{})
	if _, err := m.Builtins["__rx_poll"](m, []int64{7}); err == nil ||
		!strings.Contains(err.Error(), "bad device") {
		t.Errorf("rx on device 7: %v", err)
	}
	if _, err := m.Builtins["__tx"](m, []int64{-1, 0}); err == nil ||
		!strings.Contains(err.Error(), "bad device") {
		t.Errorf("tx on device -1: %v", err)
	}
}
