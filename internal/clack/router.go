package clack

import (
	"fmt"

	"knit/internal/knit/build"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// StandardRouterConfig is the Clack IP router of §5.2 / Table 1 in the
// Click configuration language: 24 router components — two ingress
// chains (FromDevice, Classifier, ARPResponder), a shared CheckIPHeader
// pair and route lookup, and two egress chains (DecIPTTL,
// FixIPChecksum, EthEncap, Queue, Counter, ToDevice) plus a shared
// Discard and the device-number providers.
const StandardRouterConfig = `
// sources
fd0 :: FromDevice(0);
fd1 :: FromDevice(1);

// ingress classification
cl0 :: Classifier;
cl1 :: Classifier;
ar0 :: ARPResponder;
ar1 :: ARPResponder;

// IP path
ck0 :: CheckIPHeader;
ck1 :: CheckIPHeader;
rt  :: LookupIPRoute;
tt0 :: DecIPTTL;
tt1 :: DecIPTTL;
fx0 :: FixIPChecksum;
fx1 :: FixIPChecksum;
en0 :: EthEncap(0);
en1 :: EthEncap(1);
q0  :: Queue;
q1  :: Queue;
ct0 :: Counter;
ct1 :: Counter;
td0 :: ToDevice(0);
td1 :: ToDevice(1);
dsc :: Discard;

fd0 -> cl0;
fd1 -> cl1;
cl0 [0] -> ck0;
cl0 [1] -> ar0;
cl0 [2] -> dsc;
cl1 [0] -> ck1;
cl1 [1] -> ar1;
cl1 [2] -> dsc;
ar0 -> q0;
ar1 -> q1;
ck0 [0] -> rt;
ck0 [1] -> dsc;
ck1 [0] -> rt;
ck1 [1] -> dsc;
rt [0] -> tt0;
rt [1] -> tt1;
tt0 [0] -> fx0;
tt0 [1] -> dsc;
tt1 [0] -> fx1;
tt1 [1] -> dsc;
fx0 -> en0 -> q0 -> ct0 -> td0;
fx1 -> en1 -> q1 -> ct1 -> td1;
`

// Variant selects a Table 1 router build.
type Variant struct {
	HandOptimized bool // 24 components manually merged into 2
	Flattened     bool // Knit flattening of the router region
}

// String names the variant as in Table 1's first two columns.
func (v Variant) String() string {
	switch {
	case v.HandOptimized && v.Flattened:
		return "hand+flat"
	case v.HandOptimized:
		return "hand"
	case v.Flattened:
		return "flattened"
	}
	return "modular"
}

// BuildRouter builds the Clack router in the given variant. All builds
// compile with the optimizer on (the paper uses gcc -O for every
// configuration); flattening controls whether optimization can cross
// component boundaries.
func BuildRouter(v Variant) (*build.Result, error) {
	return BuildRouterTuned(v, nil)
}

// BuildRouterTuned builds a router variant with a hook to adjust the
// build options (compiler thresholds, cost model) — used by the
// ablation benchmarks.
func BuildRouterTuned(v Variant, tune func(*build.Options)) (*build.Result, error) {
	var units string
	sources := link.Sources{}

	if v.HandOptimized {
		units = ElementUnits + HandOptUnits
		for k, s := range HandOptSources() {
			sources[k] = s
		}
		sources["oswork.c"] = ElementSources()["oswork.c"]
	} else {
		g, err := ParseConfig(StandardRouterConfig)
		if err != nil {
			return nil, err
		}
		routerUnits, genSources, _, err := g.CompileToKnit("ClackRouter")
		if err != nil {
			return nil, err
		}
		units = ElementUnits + routerUnits
		for k, s := range genSources {
			sources[k] = s
		}
		for k, s := range ElementSources() {
			sources[k] = s
		}
	}

	costs := machine.DefaultCosts()
	// The router's hot path must not fit the instruction cache, as on
	// the paper's testbed (a 200 MHz Pentium Pro has an 8 KB L1 I-cache
	// against ~100 KB of router text); scaled to our much smaller
	// programs that means a small modelled cache.
	costs.ICacheBytes = 2048
	costs.FuncPad = 64
	opts := build.Options{
		Top:         "ClackRouter",
		UnitFiles:   map[string]string{"clack.unit": units},
		Sources:     sources,
		Optimize:    true,
		InlineLimit: 2048,
		GrowthLimit: 1 << 15,
		Costs:       costs,
		Flatten:     v.Flattened,
		// Flatten the router, not the driver or the surrounding kernel —
		// the paper flattens "only the router rather than the entire
		// kernel".
		FlattenFilter: func(inst *link.Instance) bool {
			return inst.Unit.Name != "RouterDriver" && inst.Unit.Name != "OSWork"
		},
	}
	if tune != nil {
		tune(&opts)
	}
	return build.Build(opts)
}

// Measurement is one Table 1 row.
type Measurement struct {
	Variant     Variant
	CyclesPerPk float64 // cycles per packet through the router graph
	StallsPerPk float64 // i-fetch stall cycles per packet
	TextBytes   int64
	Packets     int64
	Forwarded   int
	Dropped     int
	Stats       *DeviceStats
}

// RunRouter executes a built router over the given traffic and returns
// the measurement. Costs may differ from the build's only through the
// machine; the image embeds the build-time cost model.
func RunRouter(res *build.Result, spec TrafficSpec) (*Measurement, error) {
	return RunRouterWith(res, spec, nil)
}

// RunRouterWith is RunRouter with a hook over the fresh machine before
// the run starts — the observability benchmark uses it to attach a
// metrics collector (observe.Attach) to an otherwise identical run.
func RunRouterWith(res *build.Result, spec TrafficSpec, prep func(*machine.M)) (*Measurement, error) {
	m := res.NewMachine()
	streams := spec.Generate()
	stats := InstallDevices(m, streams)
	watch := machine.InstallStopWatch(m)
	if prep != nil {
		prep(m)
	}
	_, err := res.Run(m, "main", "kmain", int64(spec.Packets+16))
	if err != nil {
		return nil, err
	}
	if watch.Windows == 0 {
		return nil, fmt.Errorf("clack: no packets traversed the router")
	}
	if len(stats.TxBad) > 0 {
		return nil, fmt.Errorf("clack: malformed transmissions: %v", stats.TxBad)
	}
	return &Measurement{
		CyclesPerPk: watch.PerWindow(),
		StallsPerPk: watch.StallsPerWindow(),
		TextBytes:   res.Image.TextSize,
		Packets:     watch.Windows,
		Forwarded:   stats.Tx[0] + stats.Tx[1],
		Dropped:     stats.Dropped,
		Stats:       stats,
	}, nil
}

// MeasureVariant builds and runs one Table 1 variant.
func MeasureVariant(v Variant, spec TrafficSpec) (*Measurement, error) {
	res, err := BuildRouter(v)
	if err != nil {
		return nil, fmt.Errorf("build %s: %w", v, err)
	}
	meas, err := RunRouter(res, spec)
	if err != nil {
		return nil, fmt.Errorf("run %s: %w", v, err)
	}
	meas.Variant = v
	return meas, nil
}
