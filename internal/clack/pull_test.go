package clack

import (
	"testing"

	"knit/internal/knit/build"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

// TestPullPathRouter builds a router using the true Click queue model:
// the push path ends at PullQueue; the driver schedules ToDevicePull to
// drain it — Click's push/pull duality expressed as Knit wiring.
func TestPullPathRouter(t *testing.T) {
	units := ElementUnits + `
unit PullDriver = {
  imports [ s0 : Step, d0 : Drain, osw : OsWork ];
  exports [ main : Main ];
  depends { main needs (s0 + d0 + osw); };
  files { "pulldriver.c" };
}

unit PullRouter = {
  exports [ main : Main ];
  link {
    [dev0] <- DevNo0 <- [];
    [q_in, q_out] <- PullQueue <- [];
    [fd_step] <- FromDevice <- [q_in, dev0];
    [sink] <- ToDevicePull <- [q_out, dev0];
    [osw] <- OSWork <- [];
    [main] <- PullDriver <- [fd_step, sink, osw];
  };
}
`
	sources := link.Sources{}
	for k, v := range ElementSources() {
		sources[k] = v
	}
	sources["pulldriver.c"] = `
int step(void);
int drain(void);
int os_work(void);
int kmain(int maxiter) {
    int pushed = 0;
    int drained = 0;
    for (int i = 0; i < maxiter; i++) {
        int got = 0;
        got += step();
        got += step();
        got += step();
        drained += drain();
        os_work();
        if (got == 0) { break; }
        pushed += got;
    }
    return pushed * 1000 + drained;
}
`
	res, err := build.Build(build.Options{
		Top:       "PullRouter",
		UnitFiles: map[string]string{"pull.unit": units},
		Sources:   sources,
		Optimize:  true,
	})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	m := res.NewMachine()
	spec := DefaultTraffic(60)
	streams := spec.Generate()
	stats := InstallDevices(m, streams)
	machine.InstallStopWatch(m)
	v, err := res.Run(m, "main", "kmain", 200)
	if err != nil {
		t.Fatal(err)
	}
	rx := len(streams[0])
	pushed := v / 1000
	drained := v % 1000
	if int(pushed) != rx || int(drained) != rx {
		t.Errorf("pushed %d, drained %d, want both == %d", pushed, drained, rx)
	}
	if stats.Tx[0] != rx {
		t.Errorf("tx = %d, want %d (pull path transmits on dev 0)", stats.Tx[0], rx)
	}
	if stats.Dropped != 0 {
		t.Errorf("dropped = %d", stats.Dropped)
	}
}
