package clack

import (
	"testing"

	"knit/internal/machine"
)

// TestServeOverloadSoak is the issue's acceptance scenario: open-loop
// traffic at 3x measured capacity, a shard killed every 50 processed
// packets, on both backends. Accepted goodput must stay >= 0.99, the
// fleet-global order oracle must see zero per-flow inversions
// (including across re-steers), conservation must balance exactly, and
// redelivery must recover every killed batch (0 drops).
func TestServeOverloadSoak(t *testing.T) {
	backends := []struct {
		name string
		b    machine.Backend
	}{
		{"interp", machine.BackendInterp},
		{"compiled", machine.BackendCompiled},
	}
	for _, bk := range backends {
		bk := bk
		t.Run(bk.name, func(t *testing.T) {
			res, err := BuildRouter(Variant{})
			if err != nil {
				t.Fatalf("BuildRouter: %v", err)
			}
			res.Backend = bk.b
			rep, err := ServeOverload(res, OverloadSpec{
				Packets:   1200,
				Flows:     64,
				Shards:    3,
				Multiple:  3,
				KillEvery: 50,
				Redeliver: 3,
				Seed:      1,
			})
			if err != nil {
				t.Fatalf("ServeOverload: %v", err)
			}
			t.Logf("%s: capacity=%.0fpps offered=%.0fpps submitted=%d admitted=%d served=%d shed=%v goodput=%.4f respawns=%d redelivered=%d trips=%d resteers=%d p99=%d cycles",
				bk.name, rep.CapacityPPS, rep.OfferedPPS, rep.Submitted, rep.Admitted,
				rep.Served, rep.Shed, rep.AcceptedGoodput, rep.Respawns, rep.Redelivered,
				rep.Stats.Trips, rep.Stats.Resteers, rep.P99Cycles)
			if rep.Submitted != 1200 {
				t.Fatalf("submitted = %d, want 1200", rep.Submitted)
			}
			if !rep.ConservationOK {
				t.Fatalf("conservation broken: submitted=%d admitted=%d served=%d dropped=%d shed=%d",
					rep.Submitted, rep.Admitted, rep.Served, rep.Dropped, rep.ShedTotal)
			}
			if rep.AcceptedGoodput < 0.99 {
				t.Fatalf("accepted goodput = %.4f, want >= 0.99", rep.AcceptedGoodput)
			}
			if rep.OrderViolations != 0 {
				t.Fatalf("order violations = %d, want 0", rep.OrderViolations)
			}
			if rep.Dropped != 0 {
				t.Fatalf("dropped = %d, want 0 (kills are transient; redelivery must recover)", rep.Dropped)
			}
			if rep.Respawns == 0 || rep.Redelivered == 0 {
				t.Fatalf("soak too tame: respawns=%d redelivered=%d, want > 0", rep.Respawns, rep.Redelivered)
			}
		})
	}
}
