package clack

import (
	"reflect"
	"testing"

	"knit/internal/knit/supervise"
)

func fakeClocks(int) supervise.Clock { return supervise.NewFakeClock() }

// TestServeFleetForwardsAndPreservesOrder is the clean-path fleet run:
// every ingested packet is accounted for (transmitted or deliberately
// dropped — nothing lost), no shard needs its supervisor, and per-flow
// transmit order matches arrival order on every shard.
func TestServeFleetForwardsAndPreservesOrder(t *testing.T) {
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatalf("BuildRouter: %v", err)
	}
	rep, err := ServeFleet(res, DefaultFlowTraffic(2000), 4, nil, fakeClocks, 0)
	if err != nil {
		t.Fatalf("ServeFleet: %v", err)
	}
	if rep.Rx != 2000 {
		t.Errorf("fleet ingested %d packets, want 2000", rep.Rx)
	}
	if rep.Tx+rep.Dropped != rep.Rx {
		t.Errorf("accounting: tx %d + dropped %d != rx %d", rep.Tx, rep.Dropped, rep.Rx)
	}
	if rep.Goodput != 1.0 {
		t.Errorf("goodput = %.4f, want 1.0 on a fault-free run", rep.Goodput)
	}
	if rep.OrderViolations != 0 {
		t.Errorf("%d per-flow order violations, want 0", rep.OrderViolations)
	}
	if !rep.Converged {
		t.Error("fleet did not converge on a fault-free run")
	}
	for id, st := range rep.PerShard {
		if st.Restarts != 0 || st.Swaps != 0 || st.Respawns != 0 {
			t.Errorf("shard %d: restarts=%d swaps=%d respawns=%d on a fault-free run",
				id, st.Restarts, st.Swaps, st.Respawns)
		}
		if st.Rx == 0 {
			t.Errorf("shard %d ingested nothing; balancer starved it", id)
		}
	}
	// Every shard attributed work; the roll-up must show the classifier
	// serving on all of them (calls across shards merge by path).
	var clsCalls uint64
	for i := range rep.Metrics.Instances {
		if rep.Metrics.Instances[i].Path != "" {
			clsCalls += rep.Metrics.Instances[i].Calls
		}
	}
	if clsCalls == 0 {
		t.Error("merged metrics attribute no calls")
	}
}

// TestServeFleetSoakFaultIsolation is the satellite's soak scenario:
// shard 0's classifier is killed every 50 packets under a 4-shard load.
// The fleet must hold >= 99% goodput, keep per-flow order, and the
// blast radius must be exactly shard 0 — its supervisor restarts then
// swaps in ClassifierSafe while every sibling's counters stay zero.
func TestServeFleetSoakFaultIsolation(t *testing.T) {
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatalf("BuildRouter: %v", err)
	}
	rep, err := ServeFleet(res, DefaultFlowTraffic(4000), 4, supervise.Default(), fakeClocks, 50)
	if err != nil {
		t.Fatalf("ServeFleet: %v", err)
	}
	if rep.Goodput < 0.99 {
		t.Errorf("goodput = %.4f, want >= 0.99", rep.Goodput)
	}
	if rep.OrderViolations != 0 {
		t.Errorf("%d per-flow order violations under faults, want 0", rep.OrderViolations)
	}
	if !rep.Converged {
		t.Error("fleet did not converge (a shard ended dead or backing off)")
	}
	for id, st := range rep.PerShard {
		if id == 0 {
			if st.Restarts == 0 {
				t.Error("shard 0 saw no restarts; the injector never fired")
			}
			if st.Swaps == 0 {
				t.Error("shard 0 never swapped to ClassifierSafe")
			}
			if st.Faults == 0 {
				t.Error("shard 0 recorded no faulted kmain calls")
			}
			continue
		}
		if st.Restarts != 0 || st.Swaps != 0 || st.Faults != 0 || st.Respawns != 0 {
			t.Errorf("shard %d: restarts=%d swaps=%d faults=%d respawns=%d; fault bled outside shard 0",
				id, st.Restarts, st.Swaps, st.Faults, st.Respawns)
		}
	}
	// The roll-up must carry shard 0's recovery history: restart and
	// swap lifecycle events attributed to the Classifier instance.
	var restarts, swaps uint64
	for i := range rep.Metrics.Instances {
		restarts += rep.Metrics.Instances[i].Restarts
		swaps += rep.Metrics.Instances[i].Swaps
	}
	if restarts == 0 || swaps == 0 {
		t.Errorf("merged metrics: restarts=%d swaps=%d, want both > 0", restarts, swaps)
	}
}

// TestServeFleetDeterministic pins reproducibility: the same spec over
// the same shard count produces identical per-shard serving stats —
// flow placement, packet mix, and fault-free execution are all
// deterministic, so a fleet run is replayable.
func TestServeFleetDeterministic(t *testing.T) {
	res, err := BuildRouter(Variant{})
	if err != nil {
		t.Fatalf("BuildRouter: %v", err)
	}
	a, err := ServeFleet(res, DefaultFlowTraffic(600), 2, nil, fakeClocks, 0)
	if err != nil {
		t.Fatalf("ServeFleet: %v", err)
	}
	b, err := ServeFleet(res, DefaultFlowTraffic(600), 2, nil, fakeClocks, 0)
	if err != nil {
		t.Fatalf("ServeFleet: %v", err)
	}
	if !reflect.DeepEqual(a.PerShard, b.PerShard) {
		t.Errorf("two identical fleet runs diverged:\n%+v\n%+v", a.PerShard, b.PerShard)
	}
}

// TestFlowTrafficGeneratorInvariants pins the generator properties the
// order check relies on: per-flow sequences are dense from 1, the flow
// tag survives in the payload, and a flow's (src, dst) — hence its
// route — never varies.
func TestFlowTrafficGeneratorInvariants(t *testing.T) {
	spec := DefaultFlowTraffic(3000)
	pkts := spec.Generate()
	if len(pkts) != 3000 {
		t.Fatalf("generated %d packets, want 3000", len(pkts))
	}
	nextSeq := map[uint64]int64{}
	dstOf := map[uint64]int64{}
	for i, fp := range pkts {
		if got := uint64(fp.Pkt.Payload[payloadFlowWord]); got != fp.Flow {
			t.Fatalf("packet %d: payload flow tag %d != flow %d", i, got, fp.Flow)
		}
		nextSeq[fp.Flow]++
		if fp.Pkt.Payload[payloadSeqWord] != nextSeq[fp.Flow] {
			t.Fatalf("packet %d: flow %d seq %d, want %d", i, fp.Flow,
				fp.Pkt.Payload[payloadSeqWord], nextSeq[fp.Flow])
		}
		if prev, ok := dstOf[fp.Flow]; ok && prev != fp.Pkt.Dst {
			t.Fatalf("flow %d changed dst %d -> %d; routes must be stable per flow",
				fp.Flow, prev, fp.Pkt.Dst)
		}
		dstOf[fp.Flow] = fp.Pkt.Dst
		if fp.Pkt.Src != 1+int64(fp.Flow) {
			t.Fatalf("flow %d has src %d, want %d", fp.Flow, fp.Pkt.Src, 1+int64(fp.Flow))
		}
	}
	// Determinism: a second generation is byte-identical.
	if !reflect.DeepEqual(pkts, spec.Generate()) {
		t.Error("generator is not deterministic for a fixed spec")
	}
}
