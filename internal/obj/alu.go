package obj

import (
	"errors"
	"knit/internal/cmini"
)

// ErrDivideByZero is reported by EvalBin for /0 and %0; the compiler's
// constant folder refuses to fold such expressions and the machine traps.
var ErrDivideByZero = errors.New("divide by zero")

// EvalBin evaluates a binary ALU operation with the exact semantics the
// simulated machine uses: 64-bit two's-complement arithmetic, shift
// counts masked to 6 bits, comparisons yielding 0 or 1. The compiler's
// constant folder calls the same function so folding can never change
// program behaviour.
func EvalBin(op cmini.Tok, a, b int64) (int64, error) {
	switch op {
	case cmini.PLUS:
		return a + b, nil
	case cmini.MINUS:
		return a - b, nil
	case cmini.STAR:
		return a * b, nil
	case cmini.SLASH:
		if b == 0 {
			return 0, ErrDivideByZero
		}
		return a / b, nil
	case cmini.PERCENT:
		if b == 0 {
			return 0, ErrDivideByZero
		}
		return a % b, nil
	case cmini.SHL:
		return a << (uint64(b) & 63), nil
	case cmini.SHR:
		return int64(uint64(a) >> (uint64(b) & 63)), nil
	case cmini.AMP:
		return a & b, nil
	case cmini.PIPE:
		return a | b, nil
	case cmini.CARET:
		return a ^ b, nil
	case cmini.LT:
		return b2i(a < b), nil
	case cmini.GT:
		return b2i(a > b), nil
	case cmini.LE:
		return b2i(a <= b), nil
	case cmini.GE:
		return b2i(a >= b), nil
	case cmini.EQ:
		return b2i(a == b), nil
	case cmini.NE:
		return b2i(a != b), nil
	}
	return 0, errors.New("obj: unknown binary op " + op.String())
}

// EvalUn evaluates a unary ALU operation; see EvalBin.
func EvalUn(op cmini.Tok, a int64) (int64, error) {
	switch op {
	case cmini.MINUS:
		return -a, nil
	case cmini.NOT:
		return b2i(a == 0), nil
	case cmini.TILDE:
		return ^a, nil
	}
	return 0, errors.New("obj: unknown unary op " + op.String())
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}
