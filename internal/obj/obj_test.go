package obj

import (
	"testing"
	"testing/quick"

	"knit/internal/cmini"
)

func TestSymbolTable(t *testing.T) {
	f := NewFile("a.o")
	f.AddSym(&Symbol{Name: "serve_web", Kind: SymFunc}) // undefined
	f.AddSym(&Symbol{Name: "serve_web", Kind: SymFunc, Defined: true})
	if s := f.Sym("serve_web"); s == nil || !s.Defined {
		t.Error("defined symbol should replace undefined entry")
	}
	f.AddSym(&Symbol{Name: "helper", Kind: SymFunc, Defined: true, Local: true})
	f.AddSym(&Symbol{Name: "fopen", Kind: SymFunc})
	exp := f.Exports()
	if len(exp) != 1 || exp[0] != "serve_web" {
		t.Errorf("Exports = %v", exp)
	}
	imp := f.Imports()
	if len(imp) != 1 || imp[0] != "fopen" {
		t.Errorf("Imports = %v", imp)
	}
}

func TestRenameRewritesEverything(t *testing.T) {
	f := NewFile("log.o")
	f.AddSym(&Symbol{Name: "serve_web", Kind: SymFunc, Defined: true})
	f.AddSym(&Symbol{Name: "serve_unlogged", Kind: SymFunc})
	f.Funcs["serve_web"] = &Func{Name: "serve_web", Code: []Instr{
		{Op: OpCall, Sym: "serve_unlogged"},
		{Op: OpAddrGlobal, Sym: "log_state"},
		{Op: OpRet},
	}}
	f.Datas["log_state"] = &Data{Name: "log_state", Size: 1,
		Init: []DataInit{{Kind: InitSym, Sym: "serve_web"}}}
	f.AddSym(&Symbol{Name: "log_state", Kind: SymData, Defined: true, Local: true})

	Rename(f, map[string]string{
		"serve_web":      "serve_logged",
		"serve_unlogged": "real_serve_web",
	})
	if f.Sym("serve_web") != nil {
		t.Error("old name still in symbol table")
	}
	fn := f.Funcs["serve_logged"]
	if fn == nil {
		t.Fatal("function not renamed in Funcs map")
	}
	if fn.Code[0].Sym != "real_serve_web" {
		t.Errorf("call target = %q", fn.Code[0].Sym)
	}
	if fn.Code[1].Sym != "log_state" {
		t.Errorf("unrelated symbol changed: %q", fn.Code[1].Sym)
	}
	if f.Datas["log_state"].Init[0].Sym != "serve_logged" {
		t.Errorf("data init not renamed: %q", f.Datas["log_state"].Init[0].Sym)
	}
}

func TestAppendRemapsStrings(t *testing.T) {
	a := NewFile("a.o")
	a.Strings = []string{"alpha"}
	a.Funcs["fa"] = &Func{Name: "fa", Code: []Instr{{Op: OpAddrString, Imm: 0}}}
	a.AddSym(&Symbol{Name: "fa", Kind: SymFunc, Defined: true})
	b := NewFile("b.o")
	b.Strings = []string{"beta"}
	b.Funcs["fb"] = &Func{Name: "fb", Code: []Instr{{Op: OpAddrString, Imm: 0}}}
	b.AddSym(&Symbol{Name: "fb", Kind: SymFunc, Defined: true})

	m := NewFile("merged")
	Append(m, a)
	Append(m, b)
	if len(m.Strings) != 2 {
		t.Fatalf("strings = %v", m.Strings)
	}
	if m.Funcs["fb"].Code[0].Imm != 1 {
		t.Errorf("fb string index = %d, want 1", m.Funcs["fb"].Code[0].Imm)
	}
	if m.Funcs["fa"].Code[0].Imm != 0 {
		t.Errorf("fa string index = %d, want 0", m.Funcs["fa"].Code[0].Imm)
	}
}

func TestAppendRenamesCollidingLocals(t *testing.T) {
	mk := func(file string, v int64) *File {
		f := NewFile(file)
		f.AddSym(&Symbol{Name: "state", Kind: SymData, Defined: true, Local: true})
		f.Datas["state"] = &Data{Name: "state", Size: 1, Local: true,
			Init: []DataInit{{Kind: InitConst, Val: v}}}
		f.AddSym(&Symbol{Name: "get_" + file, Kind: SymFunc, Defined: true})
		f.Funcs["get_"+file] = &Func{Name: "get_" + file, Code: []Instr{
			{Op: OpAddrGlobal, Sym: "state"},
			{Op: OpRet},
		}}
		return f
	}
	m := NewFile("merged")
	Append(m, mk("a", 1))
	Append(m, mk("b", 2))
	if len(m.Datas) != 2 {
		t.Fatalf("datas = %d, want 2 distinct statics", len(m.Datas))
	}
	// b's accessor must reference b's renamed static.
	fb := m.Funcs["get_b"]
	renamed := fb.Code[0].Sym
	if renamed == "state" {
		t.Error("b's static reference not redirected after collision rename")
	}
	if d, ok := m.Datas[renamed]; !ok || d.Init[0].Val != 2 {
		t.Errorf("b's static %q missing or wrong value", renamed)
	}
}

func TestCloneIndependence(t *testing.T) {
	f := NewFile("a.o")
	f.Funcs["f"] = &Func{Name: "f", Code: []Instr{{Op: OpCall, Sym: "x"}}}
	f.AddSym(&Symbol{Name: "f", Kind: SymFunc, Defined: true})
	cp := f.Clone()
	Rename(cp, map[string]string{"f": "g", "x": "y"})
	if f.Funcs["f"].Code[0].Sym != "x" {
		t.Error("rename of clone mutated original")
	}
}

// TestQuickEvalBinMatchesGo checks the ALU against Go's own semantics
// for defined cases.
func TestQuickEvalBinMatchesGo(t *testing.T) {
	fn := func(a, b int64) bool {
		type check struct {
			op   cmini.Tok
			want func() int64
			skip bool
		}
		checks := []check{
			{cmini.PLUS, func() int64 { return a + b }, false},
			{cmini.MINUS, func() int64 { return a - b }, false},
			{cmini.STAR, func() int64 { return a * b }, false},
			{cmini.SLASH, func() int64 {
				if b == 0 {
					return 0
				}
				return a / b
			}, b == 0},
			{cmini.AMP, func() int64 { return a & b }, false},
			{cmini.PIPE, func() int64 { return a | b }, false},
			{cmini.CARET, func() int64 { return a ^ b }, false},
			{cmini.SHL, func() int64 { return a << (uint64(b) & 63) }, false},
		}
		for _, c := range checks {
			if c.skip {
				continue
			}
			got, err := EvalBin(c.op, a, b)
			if err != nil || got != c.want() {
				return false
			}
		}
		// Comparisons return exactly 0 or 1.
		for _, op := range []cmini.Tok{cmini.LT, cmini.GT, cmini.LE, cmini.GE, cmini.EQ, cmini.NE} {
			v, err := EvalBin(op, a, b)
			if err != nil || (v != 0 && v != 1) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestEvalErrors(t *testing.T) {
	if _, err := EvalBin(cmini.SLASH, 1, 0); err != ErrDivideByZero {
		t.Errorf("div by zero: %v", err)
	}
	if _, err := EvalBin(cmini.PERCENT, 1, 0); err != ErrDivideByZero {
		t.Errorf("mod by zero: %v", err)
	}
	if _, err := EvalBin(cmini.LBRACE, 1, 2); err == nil {
		t.Error("bad op should error")
	}
	if _, err := EvalUn(cmini.PLUS, 1); err == nil {
		t.Error("bad unary op should error")
	}
}
