// Package obj models compiled object files: symbol tables, initialized
// data, and function code in a simple register IR. It is the common
// currency between the cmini compiler, the ld-style baseline linker, the
// Knit linker, and the simulated machine — playing the role that ELF .o
// files, ar archives, and objcopy play for the real Knit toolchain.
package obj

import (
	"fmt"
	"sort"
)

// SymKind says whether a symbol names code or data.
type SymKind int

// Symbol kinds.
const (
	SymFunc SymKind = iota
	SymData
)

func (k SymKind) String() string {
	if k == SymFunc {
		return "func"
	}
	return "data"
}

// Symbol is one entry in an object file's symbol table. A defined symbol
// is a "tab" in the paper's puzzle-piece picture; an undefined symbol is
// a "notch" that the linker must connect to a definition elsewhere.
// Local symbols (C statics) are invisible to linking.
type Symbol struct {
	Name    string
	Kind    SymKind
	Defined bool
	Local   bool
}

// Data is an initialized or zero-initialized data object.
type Data struct {
	Name  string
	Size  int        // size in words
	Init  []DataInit // sparse initializers; unmentioned words are zero
	Local bool
}

// DataInitKind distinguishes the relocation forms a data word can hold.
type DataInitKind int

// Data initializer kinds.
const (
	InitConst  DataInitKind = iota // a constant word
	InitString                     // address of a string literal (Index into Strings)
	InitSym                        // address of another symbol (Sym)
)

// DataInit sets one word of a data object at load time.
type DataInit struct {
	Offset int
	Kind   DataInitKind
	Val    int64  // InitConst
	Index  int    // InitString
	Sym    string // InitSym
}

// File is one object file: the compilation of a single cmini source file,
// or the output of a linker merge.
type File struct {
	Name    string
	Syms    []*Symbol
	Funcs   map[string]*Func
	Datas   map[string]*Data
	Strings []string // string-literal table referenced by AddrString/InitString
}

// NewFile returns an empty object file.
func NewFile(name string) *File {
	return &File{
		Name:  name,
		Funcs: map[string]*Func{},
		Datas: map[string]*Data{},
	}
}

// Sym returns the symbol named name, or nil.
func (f *File) Sym(name string) *Symbol {
	for _, s := range f.Syms {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// AddSym appends a symbol, replacing any existing undefined entry with
// the same name when the new one is defined.
func (f *File) AddSym(s *Symbol) {
	if old := f.Sym(s.Name); old != nil {
		if s.Defined && !old.Defined {
			*old = *s
		}
		return
	}
	f.Syms = append(f.Syms, s)
}

// Exports returns the names of non-local defined symbols, sorted.
func (f *File) Exports() []string {
	var out []string
	for _, s := range f.Syms {
		if s.Defined && !s.Local {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Imports returns the names of undefined symbols, sorted.
func (f *File) Imports() []string {
	var out []string
	for _, s := range f.Syms {
		if !s.Defined {
			out = append(out, s.Name)
		}
	}
	sort.Strings(out)
	return out
}

// Op is an IR opcode.
type Op int

// IR opcodes. The IR is a register machine with an unbounded set of
// virtual registers per function, a per-function stack frame for
// address-taken locals and arrays, and symbolic references to globals.
const (
	OpConst      Op = iota // Dst = Imm
	OpMov                  // Dst = A
	OpBin                  // Dst = A Tok B
	OpUn                   // Dst = Tok A
	OpLoad                 // Dst = mem[A]
	OpStore                // mem[A] = B
	OpAddrGlobal           // Dst = &sym
	OpAddrLocal            // Dst = frame pointer + Imm
	OpAddrString           // Dst = &strings[Imm]
	OpCall                 // Dst = Sym(Args...), direct call
	OpCallInd              // Dst = (*A)(Args...), indirect call
	OpJump                 // goto Targets[0]
	OpBranch               // if A != 0 goto Targets[0] else Targets[1]
	OpRet                  // return A (HasVal says whether A is meaningful)
)

var opNames = [...]string{
	"const", "mov", "bin", "un", "load", "store", "addrg", "addrl",
	"addrs", "call", "callind", "jump", "branch", "ret",
}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// Reg is a virtual register index within a function.
type Reg int32

// NoReg marks an unused register operand.
const NoReg Reg = -1

// Instr is one IR instruction. Tok values come from the cmini token set
// (the compiler reuses operator tokens as ALU opcodes).
type Instr struct {
	Op      Op
	Dst     Reg
	A, B    Reg
	Imm     int64
	Sym     string
	Tok     int // cmini.Tok for OpBin/OpUn
	Args    []Reg
	Targets [2]int
	HasVal  bool // OpRet: a value is returned
}

// Func is the compiled body of one function.
type Func struct {
	Name  string
	NArgs int
	NRegs int
	Frame int // words of frame storage for arrays/address-taken locals
	// Order is the function's position among the definitions of its
	// source file. The optimizer's inliner — modelled on gcc 2.95, which
	// the paper used — only inlines callees defined *before* their
	// caller, which is why Knit's flattener sorts merged definitions
	// callees-first "to encourage inlining in the C compiler" (§6).
	Order int
	Code  []Instr
}

// Clone returns a deep copy of fn.
func (fn *Func) Clone() *Func {
	cp := *fn
	cp.Code = make([]Instr, len(fn.Code))
	for i, in := range fn.Code {
		if in.Args != nil {
			in.Args = append([]Reg(nil), in.Args...)
		}
		cp.Code[i] = in
	}
	return &cp
}

// Rename rewrites every global symbol reference in f — symbol-table
// entries, call targets, address-of-global operands, and data-initializer
// relocations — according to mapping. It is the model of the modified
// objcopy the Knit prototype uses for renaming and for duplicating
// multiply-instantiated units.
func Rename(f *File, mapping map[string]string) {
	if len(mapping) == 0 {
		return
	}
	ren := func(name string) string {
		if to, ok := mapping[name]; ok {
			return to
		}
		return name
	}
	for _, s := range f.Syms {
		s.Name = ren(s.Name)
	}
	newFuncs := make(map[string]*Func, len(f.Funcs))
	for name, fn := range f.Funcs {
		fn.Name = ren(name)
		for i := range fn.Code {
			if fn.Code[i].Sym != "" {
				fn.Code[i].Sym = ren(fn.Code[i].Sym)
			}
		}
		newFuncs[fn.Name] = fn
	}
	f.Funcs = newFuncs
	newDatas := make(map[string]*Data, len(f.Datas))
	for name, d := range f.Datas {
		d.Name = ren(name)
		for i := range d.Init {
			if d.Init[i].Kind == InitSym {
				d.Init[i].Sym = ren(d.Init[i].Sym)
			}
		}
		newDatas[d.Name] = d
	}
	f.Datas = newDatas
}

// Clone returns a deep copy of the object file.
func (f *File) Clone() *File {
	out := NewFile(f.Name)
	out.Strings = append([]string(nil), f.Strings...)
	for _, s := range f.Syms {
		cp := *s
		out.Syms = append(out.Syms, &cp)
	}
	for name, fn := range f.Funcs {
		out.Funcs[name] = fn.Clone()
	}
	for name, d := range f.Datas {
		cp := *d
		cp.Init = append([]DataInit(nil), d.Init...)
		out.Datas[name] = &cp
	}
	return out
}

// Append merges src into dst, remapping src's string-table indexes.
// Symbol-name collisions are the caller's responsibility: linkers must
// resolve or rename before appending. Local symbols from src are made
// unique by prefixing with src's file name if they collide.
func Append(dst, src *File) {
	strBase := len(dst.Strings)
	dst.Strings = append(dst.Strings, src.Strings...)
	remap := map[string]string{}
	for _, s := range src.Syms {
		if !s.Local || dst.Sym(s.Name) == nil {
			continue
		}
		name := src.Name + "." + s.Name
		for i := 2; dst.Sym(name) != nil; i++ {
			name = fmt.Sprintf("%s.%s.%d", src.Name, s.Name, i)
		}
		remap[s.Name] = name
	}
	if len(remap) > 0 {
		src = src.Clone()
		Rename(src, remap)
	}
	for _, s := range src.Syms {
		dst.AddSym(s)
	}
	for name, fn := range src.Funcs {
		fn = fn.Clone()
		for i := range fn.Code {
			if fn.Code[i].Op == OpAddrString {
				fn.Code[i].Imm += int64(strBase)
			}
		}
		dst.Funcs[name] = fn
	}
	for name, d := range src.Datas {
		cp := *d
		cp.Init = append([]DataInit(nil), d.Init...)
		for i := range cp.Init {
			if cp.Init[i].Kind == InitString {
				cp.Init[i].Index += strBase
			}
		}
		dst.Datas[name] = &cp
	}
}
