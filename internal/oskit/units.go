package oskit

import (
	"fmt"
	"strings"

	"knit/internal/knit/link"
)

// UnitDefs is the unit-language description of the component kit: bundle
// types, the §4 context property, one unit per component, and several
// example kernels.
const UnitDefs = `
// ---- properties (paper §4) ----
property context
type NoContext
type ProcessContext < NoContext

// ---- bundle types ----
bundletype Str     = { strlen_, strcmp_, strcpy_, memset_, memcpy_ }
bundletype PutChar = { putchar_ }
bundletype Printf  = { puts_, putint_, puthex_ }
bundletype Malloc  = { malloc_, free_, mem_avail }
bundletype Fs      = { fs_init2, fs_open, fs_write, fs_read, fs_size, fs_close }
bundletype Lock    = { lock_acquire, lock_release }
bundletype Clock   = { clock_now, clock_tick }
bundletype Irq     = { irq_handle }
bundletype Main    = { kmain }

// ---- components ----
unit StringU = {
  exports [ str : Str ];
  files { "string.c" };
}

unit ConsoleDev = {
  exports [ out : PutChar ];
  files { "console.c" };
  constraints { context(out) = NoContext; };
}

unit SerialDev = {
  exports [ out : PutChar ];
  files { "serial.c" };
  constraints { context(out) = NoContext; };
}

unit PrintfU = {
  imports [ out : PutChar ];
  exports [ pf : Printf ];
  depends { pf needs out; };
  files { "printf.c" };
  constraints { context(exports) <= context(imports); };
}

unit BumpAlloc = {
  exports [ mem : Malloc ];
  initializer malloc_init for mem;
  files { "bumpalloc.c" };
}

unit ListAlloc = {
  exports [ mem : Malloc ];
  initializer malloc_init for mem;
  files { "listalloc.c" };
}

unit MemFs = {
  imports [ str : Str ];
  exports [ fs : Fs ];
  initializer fs_init for fs;
  depends {
    fs needs str;
    fs_init needs str;
  };
  files { "memfs.c" };
  rename { fs.fs_init2 to fs_reset; };
}

unit SpinLock = {
  exports [ lock : Lock ];
  files { "spinlock.c" };
  constraints { context(lock) = NoContext; };
}

unit BlockingLock = {
  exports [ lock : Lock ];
  files { "blockinglock.c" };
  constraints { context(lock) = ProcessContext; };
}

unit ClockU = {
  exports [ clk : Clock ];
  initializer clock_init for clk;
  files { "clock.c" };
}

unit IrqU = {
  imports [ lock : Lock ];
  exports [ irq : Irq ];
  depends { irq needs lock; };
  files { "irq.c" };
  constraints {
    context(irq) = NoContext;
    context(exports) <= context(imports);
  };
}
`

// memfs needs a fs_reset definition to satisfy the fs bundle's fs_init2
// symbol; extend the source with the exported reset entry point.
const srcMemfsExtra = `
int fs_reset(void) {
    fs_init();
    return 0;
}
`

// kernelDefs declares the example kernels assembled from the components.
const kernelDefs = `
// ---- kernels ----

unit HelloMain = {
  imports [ pf : Printf ];
  exports [ main : Main ];
  depends { main needs pf; };
  files { "hello_main.c" };
}

unit HelloKernel = {
  exports [ main : Main ];
  link {
    [out] <- ConsoleDev <- [];
    [pf] <- PrintfU <- [out];
    [main] <- HelloMain <- [pf];
  };
}

// RedirectMain uses two printf instances: application output and driver
// (debug) output. Wiring decides where each goes — the §5 example of
// redirecting device-driver printf without copy-and-paste tricks.
unit RedirectMain = {
  imports [ app : Printf, dbg : Printf ];
  exports [ main : Main ];
  depends { main needs (app + dbg); };
  files { "redirect_main.c" };
  rename {
    app.puts_ to app_puts;
    app.putint_ to app_putint;
    app.puthex_ to app_puthex;
    dbg.puts_ to dbg_puts;
    dbg.putint_ to dbg_putint;
    dbg.puthex_ to dbg_puthex;
  };
}

unit RedirectKernel = {
  exports [ main : Main ];
  link {
    [con] <- ConsoleDev <- [];
    [ser] <- SerialDev <- [];
    [apppf] <- PrintfU <- [con];
    [dbgpf] <- PrintfU <- [ser];
    [main] <- RedirectMain <- [apppf, dbgpf];
  };
}

// FsMain exercises a deep component stack per operation: main -> fs ->
// str, and main -> printf -> console. This is the unit-boundary-heavy
// program of the §6 micro-benchmark.
unit FsMain = {
  imports [ fs : Fs, pf : Printf, mem : Malloc, clk : Clock ];
  exports [ main : Main ];
  depends { main needs (fs + pf + mem + clk); };
  files { "fs_main.c" };
}

unit FsKernel = {
  exports [ main : Main ];
  link {
    [str] <- StringU <- [];
    [out] <- ConsoleDev <- [];
    [pf] <- PrintfU <- [out];
    [mem] <- BumpAlloc <- [];
    [clk] <- ClockU <- [];
    [fs] <- MemFs <- [str];
    [main] <- FsMain <- [fs, pf, mem, clk];
  };
}

// FsKernelListAlloc swaps the allocator implementation — a one-line
// configuration change.
unit FsKernelListAlloc = {
  exports [ main : Main ];
  link {
    [str] <- StringU <- [];
    [out] <- ConsoleDev <- [];
    [pf] <- PrintfU <- [out];
    [mem] <- ListAlloc <- [];
    [clk] <- ClockU <- [];
    [fs] <- MemFs <- [str];
    [main] <- FsMain <- [fs, pf, mem, clk];
  };
}

// SafeIrqKernel composes the interrupt path with the spinning lock; it
// passes the constraint check.
unit SafeIrqKernel = {
  exports [ irq : Irq ];
  link {
    [lock] <- SpinLock <- [];
    [irq] <- IrqU <- [lock];
  };
}

// BadIrqKernel composes it with the blocking lock; the constraint
// checker must reject it.
unit BadIrqKernel = {
  exports [ irq : Irq ];
  link {
    [lock] <- BlockingLock <- [];
    [irq] <- IrqU <- [lock];
  };
}
`

const srcHelloMain = `
int puts_(char *s);
int putint_(int v);
int kmain(int arg) {
    puts_("hello from the oskit: ");
    putint_(arg);
    puts_("\n");
    return arg * 2;
}
`

const srcRedirectMain = `
int app_puts(char *s);
int dbg_puts(char *s);
int kmain(int arg) {
    app_puts("app output");
    dbg_puts("driver debug");
    return 0;
}
`

const srcFsMain = `
int fs_init2(void);
int fs_open(char *name);
int fs_write(int fd, int w);
int fs_read(int fd, int off);
int fs_size(int fd);
int fs_close(int fd);
int puts_(char *s);
int putint_(int v);
int malloc_(int n);
int free_(int p);
int clock_tick(void);
extern int __tick_enter(void);
extern int __tick_exit(void);

// One "transaction": open a file, append, read everything back,
// crossing main -> fs -> str and main -> printf -> console unit
// boundaries many times.
int transact(int i) {
    int fd = fs_open(i % 2 == 0 ? "alpha" : "beta");
    if (fd < 0) { return -1; }
    if (fs_size(fd) >= 60) { fs_init2(); fd = fs_open("alpha"); }
    fs_write(fd, i);
    int sum = 0;
    int n = fs_size(fd);
    for (int j = 0; j < n; j++) {
        sum += fs_read(fd, j);
    }
    int *scratch = malloc_(4);
    if (scratch != 0) {
        scratch[0] = sum;
        sum = scratch[0];
        free_(scratch);
    }
    clock_tick();
    fs_close(fd);
    return sum;
}
int kmain(int iters) {
    int total = 0;
    __tick_enter();
    for (int i = 0; i < iters; i++) {
        total += transact(i);
    }
    __tick_exit();
    puts_("total=");
    putint_(total);
    puts_("\n");
    return total;
}
`

// Units returns the complete unit-language source for the kit and its
// kernels.
func Units() string { return UnitDefs + kernelDefs + ExtraUnitDefs + DeferredUnitDefs }

// KernelSources returns the kit's sources including kernel mains.
func KernelSources() link.Sources {
	s := Sources()
	s["memfs.c"] = s["memfs.c"] + srcMemfsExtra
	s["hello_main.c"] = srcHelloMain
	s["redirect_main.c"] = srcRedirectMain
	s["fs_main.c"] = srcFsMain
	for k, v := range ExtraSources() {
		s[k] = v
	}
	return s
}

// CensusKernel generates a ~n-unit kernel for the §5 constraint census:
// a chain of components where `annotated` of them carry context
// constraints and, of those, all but the endpoints are pure propagation
// ("context(exports) <= context(imports)" — the 70% case).
func CensusKernel(n, annotated int) (units string, sources link.Sources, top string) {
	if annotated > n {
		annotated = n
	}
	var b strings.Builder
	sources = link.Sources{}
	b.WriteString("property context\ntype NoContext\ntype ProcessContext < NoContext\n")
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "bundletype S%d = { f%d }\n", i, i)
	}
	// Unit i imports from unit i+1; the last is a leaf. Annotations go on
	// the first `annotated` units: the leaf-most annotated unit pins a
	// value; the rest propagate.
	for i := 0; i < n; i++ {
		var imports, depends, constraints string
		if i < n-1 {
			imports = fmt.Sprintf("imports [ below : S%d ];", i+1)
			depends = fmt.Sprintf("depends { e needs below; };")
		}
		if i < annotated {
			if i == annotated-1 || i == n-1 {
				// The deepest annotated component pins a concrete value;
				// everything above merely propagates. (ProcessContext is
				// below NoContext, so propagation keeps the whole chain at
				// ProcessContext.)
				constraints = "constraints { context(e) = ProcessContext; };"
			} else {
				constraints = "constraints { context(exports) <= context(imports); };"
			}
		}
		fmt.Fprintf(&b, `
unit C%d = {
  %s
  exports [ e : S%d ];
  %s
  %s
  files { "c%d.c" };
}
`, i, imports, i, depends, constraints, i)
		var src strings.Builder
		if i < n-1 {
			fmt.Fprintf(&src, "int f%d(void);\n", i+1)
			fmt.Fprintf(&src, "int f%d(void) { return f%d() + 1; }\n", i, i+1)
		} else {
			fmt.Fprintf(&src, "int f%d(void) { return 0; }\n", i)
		}
		sources[fmt.Sprintf("c%d.c", i)] = src.String()
	}
	b.WriteString("\nunit Census = {\n  exports [ e : S0 ];\n  link {\n")
	for i := n - 1; i >= 0; i-- {
		if i < n-1 {
			fmt.Fprintf(&b, "    [e%d] <- C%d <- [e%d];\n", i, i, i+1)
		} else {
			fmt.Fprintf(&b, "    [e%d] <- C%d <- [];\n", i, i)
		}
	}
	b.WriteString("    };\n}\n")
	// Fix export binding: the compound exports e, bound to e0.
	s := b.String()
	s = strings.Replace(s, "unit Census = {\n  exports [ e : S0 ];",
		"unit Census = {\n  exports [ e0 : S0 ];", 1)
	return s, sources, "Census"
}
