package oskit

import (
	"strings"
	"testing"

	"knit/internal/knit/build"
	"knit/internal/knit/constraint"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

func TestHelloKernel(t *testing.T) {
	v, out, _, err := RunKernel("HelloKernel", build.Options{}, 21)
	if err != nil {
		t.Fatal(err)
	}
	if v != 42 {
		t.Errorf("kmain(21) = %d, want 42", v)
	}
	if out != "hello from the oskit: 21\n" {
		t.Errorf("console = %q", out)
	}
}

func TestPrintfRedirection(t *testing.T) {
	// The §5 example: app printf goes to the console, driver printf goes
	// to the serial port — expressed purely by wiring two PrintfU
	// instances to different devices.
	res, err := BuildKernel("RedirectKernel", build.Options{})
	if err != nil {
		t.Fatal(err)
	}
	printfInstances := 0
	for _, inst := range res.Program.Instances {
		if inst.Unit.Name == "PrintfU" {
			printfInstances++
		}
	}
	if printfInstances != 2 {
		t.Fatalf("PrintfU instances = %d, want 2", printfInstances)
	}
	m := res.NewMachine()
	con := machine.InstallConsole(m)
	ser := machine.InstallSerial(m)
	if _, err := res.Run(m, "main", "kmain", 0); err != nil {
		t.Fatal(err)
	}
	if con.String() != "app output" {
		t.Errorf("console = %q, want app output only", con.String())
	}
	if ser.String() != "driver debug" {
		t.Errorf("serial = %q, want driver debug only", ser.String())
	}
}

func TestFsKernelRuns(t *testing.T) {
	v, out, _, err := RunKernel("FsKernel", build.Options{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 {
		t.Errorf("kmain(20) = %d, want positive checksum", v)
	}
	if !strings.HasPrefix(out, "total=") {
		t.Errorf("console = %q", out)
	}
}

func TestAllocatorSwapIsConfigChange(t *testing.T) {
	v1, _, _, err := RunKernel("FsKernel", build.Options{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	v2, _, _, err := RunKernel("FsKernelListAlloc", build.Options{}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("allocator choice changed results: %d vs %d", v1, v2)
	}
}

func TestIrqConstraintKernels(t *testing.T) {
	// Safe composition passes.
	if _, err := BuildKernel("SafeIrqKernel", build.Options{Check: true}); err != nil {
		t.Errorf("SafeIrqKernel should check: %v", err)
	}
	// Blocking lock under an interrupt handler is rejected.
	_, err := BuildKernel("BadIrqKernel", build.Options{Check: true})
	if err == nil {
		t.Fatal("BadIrqKernel must fail the constraint check")
	}
	if _, ok := err.(*constraint.Violation); !ok {
		t.Errorf("err = %T %v, want constraint violation", err, err)
	}
	// Without checking, it builds (the check is what catches it).
	if _, err := BuildKernel("BadIrqKernel", build.Options{}); err != nil {
		t.Errorf("BadIrqKernel without check: %v", err)
	}
}

func TestInitScheduleOrdersFsAfterString(t *testing.T) {
	res, err := BuildKernel("FsKernel", build.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Schedule.Inits) < 3 {
		t.Errorf("schedule = %v, want malloc/fs/clock inits", res.Schedule.Inits)
	}
}

func TestTraditionalFsProgramMatchesKnit(t *testing.T) {
	// The same components, built the old way, must compute the same
	// answer — Knit's value is elsewhere (composition safety), and its
	// runtime cost must be ~zero (checked in the benchmark).
	trad, err := TraditionalFsProgram(false)
	if err != nil {
		t.Fatal(err)
	}
	img, err := machine.Load(trad, machine.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	m := machine.New(img)
	machine.InstallConsole(m)
	machine.InstallStopWatch(m)
	if _, err := m.Run("canned_init"); err != nil {
		t.Fatal(err)
	}
	vTrad, err := m.Run("kmain", 20)
	if err != nil {
		t.Fatal(err)
	}
	vKnit, _, _, err := RunKernel("FsKernel", build.Options{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if vTrad != vKnit {
		t.Errorf("traditional %d != knit %d", vTrad, vKnit)
	}
}

func TestCensusKernelBuildsAndChecks(t *testing.T) {
	units, sources, top := CensusKernel(100, 35)
	res, err := build.Build(build.Options{
		Top:       top,
		UnitFiles: map[string]string{"census.unit": units},
		Sources:   sources,
		Check:     true,
	})
	if err != nil {
		t.Fatalf("census build: %v", err)
	}
	if len(res.Program.Instances) != 100 {
		t.Errorf("instances = %d, want 100", len(res.Program.Instances))
	}
	annotated := 0
	propagating := 0
	for _, inst := range res.Program.Instances {
		if len(inst.Unit.Constraints) == 0 {
			continue
		}
		annotated++
		for _, c := range inst.Unit.Constraints {
			if c.LHS.Arg == "exports" && !c.RHS.IsValue() && c.RHS.Arg == "imports" {
				propagating++
				break
			}
		}
	}
	if annotated != 35 {
		t.Errorf("annotated units = %d, want 35", annotated)
	}
	// ~70% of annotated units only propagate (the paper's census).
	ratio := float64(propagating) / float64(annotated)
	if ratio < 0.9 { // 34/35 here; the paper reports 70% on real units
		t.Errorf("propagating ratio = %f", ratio)
	}
}

func TestCensusKernelCatchesInjectedError(t *testing.T) {
	units, sources, top := CensusKernel(100, 35)
	// Inject a conflicting requirement at the top of the chain: the
	// propagation clamps everything to ProcessContext, so demanding
	// NoContext from the import is unsatisfiable.
	units = strings.Replace(units,
		"unit C0 = {\n  imports [ below : S1 ];",
		"unit C0 = {\n  imports [ below : S1 ];\n  constraints { context(below) = NoContext; };",
		1)
	_, err := build.Build(build.Options{
		Top:       top,
		UnitFiles: map[string]string{"census.unit": units},
		Sources:   sources,
		Check:     true,
	})
	if err == nil {
		t.Fatal("injected conflict not caught")
	}
}

func TestKernelSourcesAreComplete(t *testing.T) {
	srcs := KernelSources()
	for _, f := range []string{"string.c", "console.c", "serial.c",
		"printf.c", "bumpalloc.c", "listalloc.c", "memfs.c", "spinlock.c",
		"blockinglock.c", "clock.c", "irq.c", "hello_main.c",
		"redirect_main.c", "fs_main.c"} {
		if _, ok := srcs[f]; !ok {
			t.Errorf("missing source %q", f)
		}
	}
	_ = link.Sources(srcs)
}
