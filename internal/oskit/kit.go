package oskit

import (
	"fmt"
	"strings"

	"knit/internal/cmini"
	"knit/internal/compile"
	"knit/internal/knit/build"
	"knit/internal/ldlink"
	"knit/internal/machine"
	"knit/internal/obj"
)

// BuildKernel builds one of the kit's kernels with Knit.
func BuildKernel(top string, opts build.Options) (*build.Result, error) {
	opts.Top = top
	opts.UnitFiles = map[string]string{"oskit.unit": Units()}
	opts.Sources = KernelSources()
	return build.Build(opts)
}

// TraditionalFsProgram builds the FsKernel program the pre-Knit way: each
// source compiled separately and linked with the bag-of-objects linker in
// a single global namespace, initialization called from a hand-written
// canned sequence (the "carefully devised function that calls all
// initializers in the right order, once and for all" of §5). It is the
// baseline for the §6 "Knit versus traditionally built" micro-benchmark.
func TraditionalFsProgram(optimize bool) (*obj.File, error) {
	files := []string{"string.c", "console.c", "printf.c", "bumpalloc.c",
		"clock.c", "memfs.c", "fs_main.c"}
	initFuncs := []string{"malloc_init", "fs_init", "clock_init"}
	return traditionalProgram(files, initFuncs, optimize)
}

// TraditionalBigProgram is the pre-Knit build of the BigKernel
// composition: thirteen components with a longer hand-maintained
// initialization sequence.
func TraditionalBigProgram(optimize bool) (*obj.File, error) {
	files := []string{"string.c", "vga.c", "printf.c", "listalloc.c",
		"clock.c", "memfs.c", "rng.c", "pipe.c", "sched.c", "syslog.c",
		"stats.c", "timer.c", "big_main.c"}
	initFuncs := []string{"malloc_init", "fs_init", "clock_init",
		"rng_init", "pipe_init", "sched_init", "syslog_init",
		"stats_init", "timer_init"}
	return traditionalProgram(files, initFuncs, optimize)
}

// traditionalProgram compiles the named sources separately, generates
// init.c (the canned initialization sequence) and compat.c (name-bridging
// shims standing in for the "#include redirection, preprocessor magic,
// and name mangling" of §1 — Knit's rename clauses replace them), and
// links everything with ld.
func traditionalProgram(files, initFuncs []string, optimize bool) (*obj.File, error) {
	srcs := KernelSources()
	var inits strings.Builder
	for _, fn := range initFuncs {
		fmt.Fprintf(&inits, "void %s(void);\n", fn)
	}
	inits.WriteString("void canned_init(void) {\n")
	for _, fn := range initFuncs {
		fmt.Fprintf(&inits, "    %s();\n", fn)
	}
	inits.WriteString("}\n")
	compat := `
int fs_reset(void);
int fs_init2(void) { return fs_reset(); }
`
	var items []ldlink.Item
	for _, name := range files {
		f, err := cmini.Parse(name, srcs[name])
		if err != nil {
			return nil, fmt.Errorf("oskit traditional: %w", err)
		}
		o, err := compile.Compile(f, compile.Options{Opt: optimize})
		if err != nil {
			return nil, fmt.Errorf("oskit traditional: %w", err)
		}
		items = append(items, ldlink.Obj(o))
	}
	for name, src := range map[string]string{"init.c": inits.String(), "compat.c": compat} {
		f, err := cmini.Parse(name, src)
		if err != nil {
			return nil, err
		}
		o, err := compile.Compile(f, compile.Options{Opt: optimize})
		if err != nil {
			return nil, err
		}
		items = append(items, ldlink.Obj(o))
	}
	return ldlink.Link(items, ldlink.Options{
		AllowUndefined: []string{"__*"},
		Entry:          "kmain",
	})
}

// RunKernel builds a kernel, runs its kmain with the given argument, and
// returns (result, console output, machine).
func RunKernel(top string, opts build.Options, arg int64) (int64, string, *machine.M, error) {
	res, err := BuildKernel(top, opts)
	if err != nil {
		return 0, "", nil, err
	}
	m := res.NewMachine()
	con := machine.InstallConsole(m)
	machine.InstallSerial(m)
	machine.InstallStopWatch(m)
	v, err := res.Run(m, "main", "kmain", arg)
	if err != nil {
		return 0, "", nil, err
	}
	return v, con.String(), m, nil
}
