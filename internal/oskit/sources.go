// Package oskit is a component kit in the style of the Flux OSKit: a
// collection of small systems components (console, serial port, printf,
// allocators, an in-memory filesystem, locks, a clock) written in cmini
// with Knit unit descriptions. It supplies the units for the paper's §5
// experience experiments (printf redirection, initialization scheduling,
// the constraint census) and the §6 unit-boundary micro-benchmarks.
package oskit

import "knit/internal/knit/link"

// srcString is the string-utilities component: the OSKit's freestanding
// libc fragment.
const srcString = `
int strlen_(char *s) {
    int n = 0;
    while (s[n] != 0) { n++; }
    return n;
}
int strcmp_(char *a, char *b) {
    int i = 0;
    while (a[i] != 0 && a[i] == b[i]) { i++; }
    return a[i] - b[i];
}
int strcpy_(char *dst, char *src) {
    int i = 0;
    while (src[i] != 0) {
        dst[i] = src[i];
        i++;
    }
    dst[i] = 0;
    return i;
}
int memset_(int *p, int v, int n) {
    for (int i = 0; i < n; i++) { p[i] = v; }
    return n;
}
int memcpy_(int *dst, int *src, int n) {
    for (int i = 0; i < n; i++) { dst[i] = src[i]; }
    return n;
}
`

// srcConsoleDev drives the console device (a machine builtin).
const srcConsoleDev = `
extern int __console_out(int c);
int putchar_(int c) {
    __console_out(c);
    return c;
}
`

// srcSerialDev drives the serial port; it exports the same PutChar
// bundle type as the console, so output can be redirected per client by
// wiring (the paper's §5 printf-redirection example).
const srcSerialDev = `
extern int __serial_out(int c);
int putchar_(int c) {
    __serial_out(c);
    return c;
}
`

// srcPrintf is a minimal formatted-output component over a PutChar
// import: puts_/putint_/puthex_ stand in for printf's %s/%d/%x.
const srcPrintf = `
int putchar_(int c);
int puts_(char *s) {
    int i = 0;
    while (s[i] != 0) {
        putchar_(s[i]);
        i++;
    }
    return i;
}
int putint_(int v) {
    int n = 0;
    if (v < 0) {
        putchar_('-');
        v = -v;
        n = 1;
    }
    if (v >= 10) {
        n = n + putint_(v / 10);
    }
    putchar_('0' + v % 10);
    return n + 1;
}
int puthex_(int v) {
    int n = 0;
    if (v >= 16) {
        n = puthex_(v / 16);
    }
    int d = v % 16;
    if (d < 10) {
        putchar_('0' + d);
    } else {
        putchar_('a' + d - 10);
    }
    return n + 1;
}
`

// srcBumpAlloc is the simple allocator: a bump pointer over a static
// heap, with free as a no-op. mem_avail reports remaining words.
const srcBumpAlloc = `
static int heap[8192];
static int brk_;
void malloc_init(void) { brk_ = 0; }
int malloc_(int words) {
    if (words <= 0) { return 0; }
    if (brk_ + words > 8192) { return 0; }
    int *p = heap + brk_;
    brk_ += words;
    return p;
}
int free_(int p) { return 0; }
int mem_avail(void) { return 8192 - brk_; }
`

// srcListAlloc is the free-list allocator: an alternative implementation
// of the same Malloc bundle (component kits offer interchangeable
// implementations). Blocks carry a one-word header holding their size.
// Blocks carry a two-word header: [next free block, size]. In the
// word-addressed memory model pointer values and ints interconvert
// freely, so the free list stores raw addresses.
const srcListAlloc = `
static int heap[8192];
static int brk_;
static int freelist;
void malloc_init(void) {
    brk_ = 0;
    freelist = 0;
}
int malloc_(int words) {
    if (words <= 0) { return 0; }
    int cur = freelist;
    int prev = 0;
    while (cur != 0) {
        int *b = cur;
        if (b[1] >= words) {
            if (prev != 0) {
                int *pb = prev;
                pb[0] = b[0];
            } else {
                freelist = b[0];
            }
            return cur + 2;
        }
        prev = cur;
        cur = b[0];
    }
    if (brk_ + words + 2 > 8192) { return 0; }
    int *blk = heap + brk_;
    blk[0] = 0;
    blk[1] = words;
    brk_ += words + 2;
    return blk + 2;
}
int free_(int p) {
    if (p == 0) { return 0; }
    int blk = p - 2;
    int *b = blk;
    b[0] = freelist;
    freelist = blk;
    return 1;
}
int mem_avail(void) { return 8192 - brk_; }
`

// srcMemfs is a tiny in-memory filesystem: fixed table of files, each a
// name plus contents in allocator-provided storage.
const srcMemfs = `
struct file {
    char name[16];
    int used;
    int size;
    int data[64];
};
static struct file files[8];
int strcmp_(char *a, char *b);
int strcpy_(char *dst, char *src);
void fs_init(void) {
    for (int i = 0; i < 8; i++) {
        files[i].used = 0;
        files[i].size = 0;
    }
}
int fs_open(char *name) {
    for (int i = 0; i < 8; i++) {
        if (files[i].used && !strcmp_(files[i].name, name)) {
            return i;
        }
    }
    for (int i = 0; i < 8; i++) {
        if (!files[i].used) {
            files[i].used = 1;
            files[i].size = 0;
            strcpy_(files[i].name, name);
            return i;
        }
    }
    return -1;
}
int fs_write(int fd, int word) {
    if (fd < 0 || fd >= 8 || !files[fd].used) { return -1; }
    if (files[fd].size >= 64) { return -1; }
    files[fd].data[files[fd].size] = word;
    files[fd].size++;
    return 1;
}
int fs_read(int fd, int off) {
    if (fd < 0 || fd >= 8 || !files[fd].used) { return -1; }
    if (off < 0 || off >= files[fd].size) { return -1; }
    return files[fd].data[off];
}
int fs_size(int fd) {
    if (fd < 0 || fd >= 8 || !files[fd].used) { return -1; }
    return files[fd].size;
}
int fs_close(int fd) { return 0; }
`

// srcSpinLock is a lock usable in any context (it never blocks): the
// NoContext implementation in the §4 constraint example.
const srcSpinLock = `
static int held = 0;
int lock_acquire(void) {
    while (held) { }
    held = 1;
    return 1;
}
int lock_release(void) {
    held = 0;
    return 1;
}
`

// srcBlockingLock requires a process context (it "blocks" by yielding to
// a scheduler import in a real system; here the requirement lives in the
// constraint annotation).
const srcBlockingLock = `
static int held = 0;
static int waiters = 0;
int lock_acquire(void) {
    if (held) { waiters++; }
    held = 1;
    return 1;
}
int lock_release(void) {
    held = 0;
    return waiters;
}
`

// srcClock is a tick counter with an initializer.
const srcClock = `
static int now = 0;
void clock_init(void) { now = 1; }
int clock_now(void) { return now; }
int clock_tick(void) {
    now++;
    return now;
}
`

// srcIrq is interrupt-path code: annotated NoContext, it must only call
// NoContext imports.
const srcIrq = `
int lock_acquire(void);
int lock_release(void);
static int count = 0;
int irq_handle(int vec) {
    lock_acquire();
    count++;
    lock_release();
    return count;
}
`

// Sources returns the kit's virtual filesystem.
func Sources() link.Sources {
	return link.Sources{
		"string.c":       srcString,
		"console.c":      srcConsoleDev,
		"serial.c":       srcSerialDev,
		"printf.c":       srcPrintf,
		"bumpalloc.c":    srcBumpAlloc,
		"listalloc.c":    srcListAlloc,
		"memfs.c":        srcMemfs,
		"spinlock.c":     srcSpinLock,
		"blockinglock.c": srcBlockingLock,
		"clock.c":        srcClock,
		"irq.c":          srcIrq,
	}
}
