package oskit

import (
	"math"
	"testing"
	"time"

	"knit/internal/knit/build"
)

// TestUnitBoundaryOverhead is the §6 micro-benchmark: "Knit was from 2%
// slower to 3% faster". We allow a slightly wider band — the difference
// comes only from code placement (symbol names change text layout and
// hence I-cache mapping), never from extra work.
func TestUnitBoundaryOverhead(t *testing.T) {
	res, err := RunMicro(400)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("knit %.1f cycles/op, traditional %.1f cycles/op, delta %+.2f%%",
		res.KnitCycles, res.TradCycles, res.DeltaPct)
	if math.Abs(res.DeltaPct) > 5 {
		t.Errorf("Knit overhead %.2f%% outside the ±5%% band (paper: -3%%..+2%%)", res.DeltaPct)
	}
}

// TestBuildTimeBreakdown checks §6's implementation claims: most build
// time is in the compiler/loader, not in Knit's own analyses, and
// enabling constraint checking increases Knit-proper time.
func TestBuildTimeBreakdown(t *testing.T) {
	avg := func(check bool) (knit, total time.Duration) {
		const rounds = 5
		for i := 0; i < rounds; i++ {
			res, err := BuildKernel("FsKernel", build.Options{Check: check, Optimize: true})
			if err != nil {
				t.Fatal(err)
			}
			knit += res.Timings.KnitProper()
			total += res.Timings.Total()
		}
		return knit / rounds, total / rounds
	}
	knitProper, total := avg(false)
	frac := float64(total-knitProper) / float64(total)
	t.Logf("compile+load fraction: %.1f%% (knit proper %v of %v)", 100*frac, knitProper, total)
	// The paper reports >95%; our cmini compiler is much cheaper than
	// gcc, so require a majority rather than 95%.
	if frac < 0.5 {
		t.Errorf("compiler/loader fraction = %.2f, want > 0.5", frac)
	}
	knitChecked, _ := avg(true)
	if knitChecked <= knitProper/2 {
		t.Errorf("constraint checking made knit-proper time smaller: %v vs %v",
			knitChecked, knitProper)
	}
}

// TestUnitBoundaryOverheadBigKernel runs the §6 micro-benchmark on the
// larger 13-unit composition.
func TestUnitBoundaryOverheadBigKernel(t *testing.T) {
	res, err := RunMicroKernel("BigKernel", 200)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("knit %.1f cycles/op, traditional %.1f cycles/op, delta %+.2f%%",
		res.KnitCycles, res.TradCycles, res.DeltaPct)
	if math.Abs(res.DeltaPct) > 5 {
		t.Errorf("Knit overhead %.2f%% outside the ±5%% band", res.DeltaPct)
	}
}
