package oskit

import (
	"fmt"

	"knit/internal/knit/build"
	"knit/internal/machine"
	"knit/internal/obj"
)

// MicroResult is one row of the §6 micro-benchmark: the same
// unit-boundary-heavy program built with Knit and built traditionally,
// measured over the same workload.
type MicroResult struct {
	Kernel      string
	KnitCycles  float64 // per-iteration cycles, Knit build
	TradCycles  float64 // per-iteration cycles, traditional build
	DeltaPct    float64 // (knit-trad)/trad * 100; negative = Knit faster
	UnitsTotal  int
	UnitsOnPath int
}

// unitsOnFsPath is the depth of the component chain a single FsKernel
// transaction crosses: FsMain -> MemFs -> StringU, FsMain -> BumpAlloc,
// FsMain -> ClockU, and at the end FsMain -> PrintfU -> ConsoleDev
// (3–8 units on the critical path, as in §6).
const unitsOnFsPath = 7

// RunMicro measures the §6 experiment for the FsKernel workload: Knit's
// generated linking and initialization must cost essentially nothing at
// run time versus the traditional ld build — the paper reports "from 2%
// slower to 3% faster", the residue being code-placement effects.
func RunMicro(iters int64) (*MicroResult, error) {
	return RunMicroKernel("FsKernel", iters)
}

// RunMicroKernel runs the micro-benchmark for "FsKernel" or "BigKernel".
func RunMicroKernel(kernel string, iters int64) (*MicroResult, error) {
	res, err := BuildKernel(kernel, build.Options{})
	if err != nil {
		return nil, err
	}
	mk := res.NewMachine()
	machine.InstallConsole(mk)
	wk := machine.InstallStopWatch(mk)
	if _, err := res.Run(mk, "main", "kmain", iters); err != nil {
		return nil, fmt.Errorf("knit build: %w", err)
	}
	if wk.Windows == 0 {
		return nil, fmt.Errorf("knit build measured no work")
	}
	knitPer := float64(wk.Total) / float64(iters)

	var trad *obj.File
	switch kernel {
	case "FsKernel":
		trad, err = TraditionalFsProgram(false)
	case "BigKernel":
		trad, err = TraditionalBigProgram(false)
	default:
		return nil, fmt.Errorf("oskit: no traditional build for kernel %q", kernel)
	}
	if err != nil {
		return nil, err
	}
	img, err := machine.Load(trad, machine.DefaultCosts())
	if err != nil {
		return nil, err
	}
	mt := machine.New(img)
	machine.InstallConsole(mt)
	wt := machine.InstallStopWatch(mt)
	if _, err := mt.Run("canned_init"); err != nil {
		return nil, err
	}
	if _, err := mt.Run("kmain", iters); err != nil {
		return nil, fmt.Errorf("traditional build: %w", err)
	}
	if wt.Windows == 0 {
		return nil, fmt.Errorf("traditional build measured no work")
	}
	tradPer := float64(wt.Total) / float64(iters)

	return &MicroResult{
		Kernel:      kernel,
		KnitCycles:  knitPer,
		TradCycles:  tradPer,
		DeltaPct:    100 * (knitPer - tradPer) / tradPer,
		UnitsTotal:  len(res.Program.Instances),
		UnitsOnPath: unitsOnFsPath,
	}, nil
}
