package oskit

import (
	"strings"
	"testing"

	"knit/internal/knit/build"
	"knit/internal/machine"
)

func TestBigKernelRuns(t *testing.T) {
	res, err := BuildKernel("BigKernel", build.Options{Check: true})
	if err != nil {
		t.Fatal(err)
	}
	if n := len(res.Program.Instances); n != 13 {
		t.Errorf("BigKernel instances = %d, want 13", n)
	}
	// All component initializers scheduled; timer_init after clock is
	// ready (it reads clock_now).
	inits := strings.Join(res.Schedule.Inits, " ")
	for _, want := range []string{"malloc_init", "fs_init", "clock_init",
		"rng_init", "pipe_init", "sched_init", "syslog_init", "stats_init",
		"timer_init"} {
		if !strings.Contains(inits, want) {
			t.Errorf("schedule missing %s: %v", want, res.Schedule.Inits)
		}
	}
	ci := strings.Index(inits, "clock_init")
	ti := strings.Index(inits, "timer_init")
	if ci < 0 || ti < 0 || ci > ti {
		t.Errorf("clock_init must precede timer_init: %v", res.Schedule.Inits)
	}

	m := res.NewMachine()
	con := machine.InstallConsole(m)
	machine.InstallStopWatch(m)
	v, err := res.Run(m, "main", "kmain", 40)
	if err != nil {
		t.Fatal(err)
	}
	if v < 0 {
		t.Errorf("kmain = %d", v)
	}
	out := con.String()
	if !strings.Contains(out, "ops=40") {
		t.Errorf("console = %q, want ops=40", out)
	}
	if !strings.Contains(out, "logs=") {
		t.Errorf("console = %q, want timer log count", out)
	}
}

func TestBigKernelFlattenEquivalent(t *testing.T) {
	run := func(flatten bool) (int64, string) {
		res, err := BuildKernel("BigKernel", build.Options{Optimize: true, Flatten: flatten})
		if err != nil {
			t.Fatal(err)
		}
		m := res.NewMachine()
		con := machine.InstallConsole(m)
		machine.InstallStopWatch(m)
		v, err := res.Run(m, "main", "kmain", 30)
		if err != nil {
			t.Fatal(err)
		}
		return v, con.String()
	}
	v1, o1 := run(false)
	v2, o2 := run(true)
	if v1 != v2 || o1 != o2 {
		t.Errorf("flattening changed BigKernel: (%d,%q) vs (%d,%q)", v1, o1, v2, o2)
	}
}

func TestVgaConsoleAsPutChar(t *testing.T) {
	// Swap the console implementation in HelloKernel for the VGA one: a
	// one-line link change, third interchangeable PutChar provider.
	units := strings.Replace(Units(),
		"[out] <- ConsoleDev <- [];\n    [pf] <- PrintfU <- [out];\n    [main] <- HelloMain <- [pf];",
		"[out, vga] <- VgaConsole <- [];\n    [pf] <- PrintfU <- [out];\n    [main] <- HelloMain <- [pf];",
		1)
	res, err := build.Build(build.Options{
		Top:       "HelloKernel",
		UnitFiles: map[string]string{"oskit.unit": units},
		Sources:   KernelSources(),
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.NewMachine()
	con := machine.InstallConsole(m)
	if _, err := res.Run(m, "main", "kmain", 5); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(con.String(), "hello from the oskit: 5") {
		t.Errorf("console = %q", con.String())
	}
}

func TestKbdComponent(t *testing.T) {
	units := Units() + `
bundletype Echo = { echo }
unit EchoMain = {
  imports [ kbd : Kbd, pf : Printf ];
  exports [ main2 : Echo ];
  depends { main2 needs (kbd + pf); };
  files { "echo_main.c" };
}
unit EchoKernel = {
  exports [ main2 : Echo ];
  link {
    [kbd] <- KbdU <- [];
    [out] <- ConsoleDev <- [];
    [pf] <- PrintfU <- [out];
    [main2] <- EchoMain <- [kbd, pf];
  };
}
`
	sources := KernelSources()
	sources["echo_main.c"] = `
int kbd_gets(char *dst, int max);
int puts_(char *s);
int echo(int unused) {
    char buf[32];
    int n = kbd_gets(buf, 32);
    puts_(buf);
    return n;
}
`
	res, err := build.Build(build.Options{
		Top:       "EchoKernel",
		UnitFiles: map[string]string{"oskit.unit": units},
		Sources:   sources,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.NewMachine()
	con := machine.InstallConsole(m)
	input := []int64{'h', 'i', '!', '\n', 'x'}
	pos := 0
	m.RegisterBuiltin("__kbd_in", func(_ *machine.M, _ []int64) (int64, error) {
		if pos >= len(input) {
			return -1, nil
		}
		c := input[pos]
		pos++
		return c, nil
	})
	n, err := res.Run(m, "main2", "echo", 0)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 || con.String() != "hi!" {
		t.Errorf("echo = %d, console %q", n, con.String())
	}
}

// TestAsmStringSwap swaps the C string component for the
// assembly-implemented one in FsKernel: a one-line configuration change,
// identical behaviour — the paper's "C, assembly, and object code" claim
// exercised inside the kit.
func TestAsmStringSwap(t *testing.T) {
	units := strings.Replace(Units(),
		"[str] <- StringU <- [];\n    [out] <- ConsoleDev <- [];\n    [pf] <- PrintfU <- [out];\n    [mem] <- BumpAlloc <- [];",
		"[str] <- AsmString <- [];\n    [out] <- ConsoleDev <- [];\n    [pf] <- PrintfU <- [out];\n    [mem] <- BumpAlloc <- [];",
		1)
	if units == Units() {
		t.Fatal("link-line replacement did not apply")
	}
	res, err := build.Build(build.Options{
		Top:       "FsKernel",
		UnitFiles: map[string]string{"oskit.unit": units},
		Sources:   KernelSources(),
	})
	if err != nil {
		t.Fatalf("build with AsmString: %v", err)
	}
	m := res.NewMachine()
	machine.InstallConsole(m)
	machine.InstallStopWatch(m)
	vAsm, err := res.Run(m, "main", "kmain", 20)
	if err != nil {
		t.Fatal(err)
	}
	vC, _, _, err := RunKernel("FsKernel", build.Options{}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if vAsm != vC {
		t.Errorf("assembly string component changed results: %d vs %d", vAsm, vC)
	}
}

func TestSchedContextConstraint(t *testing.T) {
	// The cooperative scheduler requires a process context; wiring it
	// under interrupt-path code must fail the §4 check.
	units := Units() + `
bundletype Poll = { poll_once }
unit IrqPoller = {
  imports [ sched : Sched ];
  exports [ poll : Poll ];
  depends { poll needs sched; };
  files { "irq_poller.c" };
  constraints {
    context(poll) = NoContext;
    context(exports) <= context(imports);
  };
}
unit BadPollKernel = {
  exports [ poll : Poll ];
  link {
    [sched] <- SchedU <- [];
    [poll] <- IrqPoller <- [sched];
  };
}
`
	sources := KernelSources()
	sources["irq_poller.c"] = `
int sched_run(void);
int poll_once(int vec) { return sched_run(); }
`
	_, err := build.Build(build.Options{
		Top:       "BadPollKernel",
		UnitFiles: map[string]string{"oskit.unit": units},
		Sources:   sources,
		Check:     true,
	})
	if err == nil {
		t.Fatal("NoContext poller over a ProcessContext scheduler must be rejected")
	}
	if !strings.Contains(err.Error(), "constraint violation") {
		t.Errorf("err = %v, want constraint violation", err)
	}
}
