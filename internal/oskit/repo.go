package oskit

import "knit/internal/knit/assemble"

// Repository packages the kit as a searchable unit repository for the
// goal-directed assembler: every unit definition (base kit, kernels,
// extras, deferred-work stack) plus the full virtual source filesystem,
// so anything the searcher wires together can be built and run.
func Repository() assemble.Repo {
	return assemble.Repo{
		UnitFiles: map[string]string{"oskit.unit": Units()},
		Sources:   KernelSources(),
	}
}
