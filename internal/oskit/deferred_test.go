package oskit

import (
	"strings"
	"testing"

	"knit/internal/knit/build"
)

// TestBottomHalfKernel is the safe version of BadIrqKernel: interrupts
// defer into a queue (NoContext side) and the blocking lock is only used
// by the process-context drain side — a single component carrying two
// different context constraints on two bundles.
func TestBottomHalfKernel(t *testing.T) {
	res, err := BuildKernel("BottomHalfKernel", build.Options{Check: true})
	if err != nil {
		t.Fatalf("BottomHalfKernel should pass the constraint check: %v", err)
	}
	// Per-bundle granularity: the checker assigned different domains to
	// the two bundles of the same instance.
	var enqDomain, drainDomain string
	for v, dom := range res.ConstraintReport.Assignment {
		if v.Inst.Unit.Name != "DeferredWork" {
			continue
		}
		switch v.Bundle {
		case "enq":
			enqDomain = strings.Join(dom, ",")
		case "drain":
			drainDomain = strings.Join(dom, ",")
		}
	}
	if enqDomain != "NoContext" {
		t.Errorf("enq domain = %q, want NoContext", enqDomain)
	}
	if drainDomain != "ProcessContext" {
		t.Errorf("drain domain = %q, want ProcessContext", drainDomain)
	}

	// Behaviour: interrupts enqueue; drain processes everything under
	// the lock.
	m := res.NewMachine()
	irq, err := res.Export("irq", "irq_handle")
	if err != nil {
		t.Fatal(err)
	}
	if err := res.RunInit(m); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := m.Run(irq, int64(10+i)); err != nil {
			t.Fatal(err)
		}
	}
	drain, err := res.Export("drain", "dw_drain")
	if err != nil {
		t.Fatal(err)
	}
	n, err := m.Run(drain)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("drained %d items, want 5", n)
	}
}

// TestBottomHalfRejectsDirectIrqDrain: wiring the drain side where a
// NoContext consumer calls it must fail — the safe pattern's dual.
func TestBottomHalfRejectsDirectIrqDrain(t *testing.T) {
	units := Units() + `
bundletype Poll2 = { poll2 }
unit EagerIrq = {
  imports [ d : Drainer ];
  exports [ p : Poll2 ];
  depends { p needs d; };
  files { "eager.c" };
  constraints {
    context(p) = NoContext;
    context(exports) <= context(imports);
  };
}
unit EagerKernel = {
  exports [ p : Poll2 ];
  link {
    [lock] <- BlockingLock <- [];
    [enq, drain] <- DeferredWork <- [lock];
    [p] <- EagerIrq <- [drain];
  };
}
`
	sources := KernelSources()
	sources["eager.c"] = `
int dw_drain(void);
int poll2(int v) { return dw_drain(); }
`
	_, err := build.Build(build.Options{
		Top:       "EagerKernel",
		UnitFiles: map[string]string{"oskit.unit": units},
		Sources:   sources,
		Check:     true,
	})
	if err == nil {
		t.Fatal("draining from interrupt context must be rejected")
	}
	if !strings.Contains(err.Error(), "constraint violation") {
		t.Errorf("err = %v", err)
	}
}
