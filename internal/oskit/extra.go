package oskit

import "knit/internal/knit/link"

// This file extends the kit toward the scale of the real OSKit ("about
// 250 components"): a second tier of small components — RNG, ring-buffer
// pipe, cooperative scheduler, keyboard input, VGA text console, system
// logger, statistics, and a timer built on the clock — plus BigKernel, a
// composition in the 30+ instance range of the paper's §6 test programs.

// srcRng is a xorshift pseudo-random generator with a seeding
// initializer.
const srcRng = `
static int state;
void rng_init(void) { state = 88172645463325252; }
int rng_next(void) {
    int x = state;
    x = x ^ (x << 13);
    x = x ^ ((x >> 7) & 144115188075855871);
    x = x ^ (x << 17);
    state = x;
    return x & 2147483647;
}
int rng_range(int n) {
    if (n <= 0) { return 0; }
    return rng_next() % n;
}
`

// srcPipe is a fixed-capacity ring-buffer pipe.
const srcPipe = `
static int buf[64];
static int rd;
static int wr;
void pipe_init(void) {
    rd = 0;
    wr = 0;
}
int pipe_write(int w) {
    if (wr - rd >= 64) { return -1; }
    buf[wr % 64] = w;
    wr++;
    return 1;
}
int pipe_read(void) {
    if (rd == wr) { return -1; }
    int v = buf[rd % 64];
    rd++;
    return v;
}
int pipe_len(void) { return wr - rd; }
`

// srcSched is a cooperative run queue of function pointers: tasks are
// fn values enqueued with sched_spawn and drained by sched_run.
const srcSched = `
static fn tasks[32];
static int args[32];
static int ntasks;
void sched_init(void) { ntasks = 0; }
int sched_spawn(fn f, int arg) {
    if (ntasks >= 32) { return -1; }
    tasks[ntasks] = f;
    args[ntasks] = arg;
    ntasks++;
    return ntasks;
}
int sched_run(void) {
    int done = 0;
    int i = 0;
    while (i < ntasks) {
        fn f = tasks[i];
        f(args[i]);
        done++;
        i++;
    }
    ntasks = 0;
    return done;
}
`

// srcKbd reads from the keyboard device builtin (returns -1 when no key
// is pending).
const srcKbd = `
extern int __kbd_in(void);
int kbd_read(void) { return __kbd_in(); }
int kbd_gets(char *dst, int max) {
    int n = 0;
    while (n < max - 1) {
        int c = __kbd_in();
        if (c < 0 || c == '\n') { break; }
        dst[n] = c;
        n++;
    }
    dst[n] = 0;
    return n;
}
`

// srcVga renders to a memory-mapped text buffer (a static array standing
// in for 0xB8000) while also mirroring to the console device, so output
// is observable both ways.
const srcVga = `
extern int __console_out(int c);
static int vram[2000];
static int cursor;
int putchar_(int c) {
    if (c == '\n') {
        cursor = (cursor / 80 + 1) * 80;
    } else {
        vram[cursor % 2000] = c;
        cursor++;
    }
    __console_out(c);
    return c;
}
int vga_cell(int i) {
    if (i < 0 || i >= 2000) { return -1; }
    return vram[i];
}
int vga_cursor(void) { return cursor; }
`

// srcSyslog is a bounded in-memory log of (code, value) records.
const srcSyslog = `
static int codes[128];
static int values[128];
static int n;
void syslog_init(void) { n = 0; }
int syslog_put(int code, int value) {
    if (n >= 128) { return -1; }
    codes[n] = code;
    values[n] = value;
    n++;
    return n;
}
int syslog_count(void) { return n; }
int syslog_code(int i) {
    if (i < 0 || i >= n) { return -1; }
    return codes[i];
}
int syslog_value(int i) {
    if (i < 0 || i >= n) { return -1; }
    return values[i];
}
`

// srcStats counts named events (a fixed table of 16 counters).
const srcStats = `
static int counters[16];
void stats_init(void) {
    for (int i = 0; i < 16; i++) { counters[i] = 0; }
}
int stat_bump(int which) {
    if (which < 0 || which >= 16) { return -1; }
    counters[which]++;
    return counters[which];
}
int stat_read(int which) {
    if (which < 0 || which >= 16) { return -1; }
    return counters[which];
}
`

// srcTimer builds one-shot timers on the clock component.
const srcTimer = `
int clock_now(void);
int clock_tick(void);
static int deadline;
static int armed;
void timer_init(void) { armed = 0; }
int timer_arm(int ticks) {
    deadline = clock_now() + ticks;
    armed = 1;
    return deadline;
}
int timer_expired(void) {
    if (!armed) { return 0; }
    if (clock_now() >= deadline) {
        armed = 0;
        return 1;
    }
    return 0;
}
`

// srcAsmString is the string component reimplemented in assembly — the
// kind of hand-tuned hot-path routine real kits keep in .s files. It
// exports the same Str bundle as StringU, so kernels can swap it in with
// a one-line link change (paper: "Knit can actually work with C,
// assembly, and object code").
const srcAsmString = `
# strlen_(s): scan for the NUL terminator.
func strlen_ nargs=1 nregs=5
  const r1, 0          ; n
  const r2, 1
scan:
  bin r3, r0, +, r1
  load r3, r3
  branch r3, more, done
more:
  bin r1, r1, +, r2
  jump scan
done:
  ret r1

# strcmp_(a, b)
func strcmp_ nargs=2 nregs=7
  const r2, 1
loop:
  load r3, r0
  load r4, r1
  bin r5, r3, -, r4
  branch r5, differ, same
same:
  branch r3, step, equal
step:
  bin r0, r0, +, r2
  bin r1, r1, +, r2
  jump loop
differ:
  ret r5
equal:
  const r5, 0
  ret r5

# strcpy_(dst, src) -> length copied
func strcpy_ nargs=2 nregs=7
  const r2, 0          ; n
  const r3, 1
copy:
  bin r4, r1, +, r2
  load r4, r4
  bin r5, r0, +, r2
  store r5, r4
  branch r4, next, fin
next:
  bin r2, r2, +, r3
  jump copy
fin:
  ret r2

# memset_(p, v, n)
func memset_ nargs=3 nregs=7
  const r3, 0
  const r4, 1
mloop:
  bin r5, r3, <, r2
  branch r5, mbody, mdone
mbody:
  bin r6, r0, +, r3
  store r6, r1
  bin r3, r3, +, r4
  jump mloop
mdone:
  ret r2

# memcpy_(dst, src, n)
func memcpy_ nargs=3 nregs=8
  const r3, 0
  const r4, 1
cloop:
  bin r5, r3, <, r2
  branch r5, cbody, cdone
cbody:
  bin r6, r1, +, r3
  load r6, r6
  bin r7, r0, +, r3
  store r7, r6
  bin r3, r3, +, r4
  jump cloop
cdone:
  ret r2
`

// ExtraUnitDefs declares the second-tier components and BigKernel.
const ExtraUnitDefs = `
// AsmString: the Str bundle implemented in assembly.
unit AsmString = {
  exports [ str : Str ];
  files { "string.s" };
}

bundletype Rng    = { rng_init2, rng_next, rng_range }
bundletype Pipe   = { pipe_write, pipe_read, pipe_len }
bundletype Sched  = { sched_spawn, sched_run }
bundletype Kbd    = { kbd_read, kbd_gets }
bundletype Vga    = { vga_cell, vga_cursor }
bundletype Syslog = { syslog_put, syslog_count, syslog_code, syslog_value }
bundletype Stats  = { stat_bump, stat_read }
bundletype Timer  = { timer_arm, timer_expired }

unit RngU = {
  exports [ rng : Rng ];
  initializer rng_init for rng;
  files { "rng.c" };
  rename { rng.rng_init2 to rng_reseed; };
}

unit PipeU = {
  exports [ pipe : Pipe ];
  initializer pipe_init for pipe;
  files { "pipe.c" };
}

unit SchedU = {
  exports [ sched : Sched ];
  initializer sched_init for sched;
  files { "sched.c" };
  constraints { context(sched) = ProcessContext; };
}

unit KbdU = {
  exports [ kbd : Kbd ];
  files { "kbd.c" };
}

// VgaConsole exports the same PutChar bundle as ConsoleDev/SerialDev —
// a third interchangeable console implementation — plus its own Vga
// inspection bundle.
unit VgaConsole = {
  exports [ out : PutChar, vga : Vga ];
  files { "vga.c" };
  constraints { context(out) = NoContext; };
}

unit SyslogU = {
  exports [ slog : Syslog ];
  initializer syslog_init for slog;
  files { "syslog.c" };
}

unit StatsU = {
  exports [ stats : Stats ];
  initializer stats_init for stats;
  files { "stats.c" };
}

unit TimerU = {
  imports [ clk : Clock ];
  exports [ timer : Timer ];
  initializer timer_init for timer;
  depends {
    timer needs clk;
    timer_init needs clk;
  };
  files { "timer.c" };
}

// BigMain drives a workload across the whole kit: filesystem
// transactions, pipe traffic, RNG, timers, stats, and logging, printing
// a summary through the VGA console.
unit BigMain = {
  imports [ fs : Fs, pf : Printf, mem : Malloc, clk : Clock,
            rng : Rng, pipe : Pipe, sched : Sched, slog : Syslog,
            stats : Stats, timer : Timer, str : Str ];
  exports [ main : Main ];
  depends { main needs (fs + pf + mem + clk + rng + pipe + sched + slog + stats + timer + str); };
  files { "big_main.c" };
}

unit BigKernel = {
  exports [ main : Main ];
  link {
    [str] <- StringU <- [];
    [out, vga] <- VgaConsole <- [];
    [pf] <- PrintfU <- [out];
    [mem] <- ListAlloc <- [];
    [clk] <- ClockU <- [];
    [fs] <- MemFs <- [str];
    [rng] <- RngU <- [];
    [pipe] <- PipeU <- [];
    [sched] <- SchedU <- [];
    [slog] <- SyslogU <- [];
    [stats] <- StatsU <- [];
    [timer] <- TimerU <- [clk];
    [main] <- BigMain <- [fs, pf, mem, clk, rng, pipe, sched, slog, stats, timer, str];
  };
}
`

const srcRngExtra = `
int rng_reseed(void) {
    rng_init();
    return 0;
}
`

const srcBigMain = `
int fs_init2(void);
int fs_open(char *name);
int fs_write(int fd, int w);
int fs_read(int fd, int off);
int fs_size(int fd);
int fs_close(int fd);
int puts_(char *s);
int putint_(int v);
int malloc_(int n);
int free_(int p);
int clock_now(void);
int clock_tick(void);
int rng_next(void);
int rng_range(int n);
int pipe_write(int w);
int pipe_read(void);
int pipe_len(void);
int sched_spawn(fn f, int arg);
int sched_run(void);
int syslog_put(int code, int value);
int syslog_count(void);
int stat_bump(int which);
int stat_read(int which);
int timer_arm(int ticks);
int timer_expired(void);
int strlen_(char *s);
extern int __tick_enter(void);
extern int __tick_exit(void);

static int pumped = 0;
int pump_task(int arg) {
    pipe_write(arg);
    pumped += arg;
    return pumped;
}

int transact(int i) {
    stat_bump(0);
    int fd = fs_open(i % 2 == 0 ? "alpha" : "beta");
    if (fd < 0) { return -1; }
    if (fs_size(fd) >= 56) { fs_init2(); fd = fs_open("alpha"); }
    fs_write(fd, rng_range(100) + i);
    int sum = 0;
    int n = fs_size(fd);
    for (int j = 0; j < n; j++) {
        sum += fs_read(fd, j);
    }
    sched_spawn(&pump_task, i % 7);
    sched_spawn(&pump_task, i % 3);
    sched_run();
    while (pipe_len() > 0) {
        sum ^= pipe_read();
    }
    int *p = malloc_(2);
    if (p != 0) {
        p[0] = sum;
        sum = p[0];
        free_(p);
    }
    if (timer_expired()) {
        syslog_put(1, clock_now());
        timer_arm(5);
    }
    clock_tick();
    stat_bump(1);
    fs_close(fd);
    return sum & 65535;
}

int kmain(int iters) {
    timer_arm(3);
    int total = 0;
    __tick_enter();
    for (int i = 0; i < iters; i++) {
        total += transact(i);
    }
    __tick_exit();
    puts_("ops=");
    putint_(stat_read(0));
    puts_(" logs=");
    putint_(syslog_count());
    puts_("\n");
    return total;
}
`

// srcDeferred is the interrupt bottom-half pattern: the enqueue side is
// callable from any context (an interrupt handler defers work into it);
// the drain side runs in process context and may therefore use blocking
// services. One component, two bundles, two different context
// constraints.
const srcDeferred = `
static int work[64];
static int rd;
static int wr;
void dw_init(void) {
    rd = 0;
    wr = 0;
}
int dw_enqueue(int item) {
    if (wr - rd >= 64) { return -1; }
    work[wr % 64] = item;
    wr++;
    return 1;
}
int lock_acquire(void);
int lock_release(void);
int dw_drain(void) {
    int n = 0;
    while (rd != wr) {
        lock_acquire();
        rd++;
        n++;
        lock_release();
    }
    return n;
}
`

// srcIrqDefer is an interrupt handler that defers its work.
const srcIrqDefer = `
int dw_enqueue(int item);
static int count = 0;
int irq_handle(int vec) {
    count++;
    dw_enqueue(vec);
    return count;
}
`

// DeferredUnitDefs declares the bottom-half components and the kernels
// demonstrating the safe and unsafe compositions.
const DeferredUnitDefs = `
bundletype WorkQ  = { dw_enqueue }
bundletype Drainer = { dw_drain }

// One unit, two bundles with different context requirements: enqueueing
// is interrupt-safe; draining requires a process context (it takes a
// possibly-blocking lock).
unit DeferredWork = {
  imports [ lock : Lock ];
  exports [ enq : WorkQ, drain : Drainer ];
  initializer dw_init for enq;
  depends { drain needs lock; };
  files { "deferred.c" };
  constraints {
    context(enq) = NoContext;
    context(drain) = ProcessContext;
    context(drain) <= context(lock);
  };
}

unit IrqDefer = {
  imports [ wq : WorkQ ];
  exports [ irq : Irq ];
  depends { irq needs wq; };
  files { "irq_defer.c" };
  constraints {
    context(irq) = NoContext;
    context(exports) <= context(imports);
  };
}

// The safe composition: interrupts defer into the queue; the blocking
// lock is only reachable from the process-context drain side.
unit BottomHalfKernel = {
  exports [ irq : Irq, drain : Drainer ];
  link {
    [lock] <- BlockingLock <- [];
    [enq, drain] <- DeferredWork <- [lock];
    [irq] <- IrqDefer <- [enq];
  };
}
`

// ExtraSources returns the second-tier component sources.
func ExtraSources() link.Sources {
	return link.Sources{
		"rng.c":       srcRng + srcRngExtra,
		"pipe.c":      srcPipe,
		"sched.c":     srcSched,
		"kbd.c":       srcKbd,
		"vga.c":       srcVga,
		"syslog.c":    srcSyslog,
		"stats.c":     srcStats,
		"timer.c":     srcTimer,
		"big_main.c":  srcBigMain,
		"string.s":    srcAsmString,
		"deferred.c":  srcDeferred,
		"irq_defer.c": srcIrqDefer,
	}
}
