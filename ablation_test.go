// Ablation benchmarks for the design choices DESIGN.md calls out: which
// compiler and cost-model mechanisms the Table 1 result actually rests
// on. Each ablation disables one mechanism in the flattened router build
// and reports the resulting per-packet cycles.
package knit

import (
	"testing"

	"knit/internal/clack"
	"knit/internal/knit/build"
	"knit/internal/machine"
)

func measureTuned(tb testing.TB, v clack.Variant, packets int, tune func(*build.Options)) *clack.Measurement {
	tb.Helper()
	res, err := clack.BuildRouterTuned(v, tune)
	if err != nil {
		tb.Fatal(err)
	}
	meas, err := clack.RunRouter(res, clack.DefaultTraffic(packets))
	if err != nil {
		tb.Fatal(err)
	}
	return meas
}

// TestAblationDirections asserts, with small workloads, that each
// mechanism contributes in the expected direction.
func TestAblationDirections(t *testing.T) {
	const packets = 300
	flat := clack.Variant{Flattened: true}
	full := measureTuned(t, flat, packets, nil)

	t.Run("inlining", func(t *testing.T) {
		// Without inlining, flattening loses most of its benefit: calls
		// remain even though they are intra-file.
		noInline := measureTuned(t, flat, packets, func(o *build.Options) {
			o.InlineLimit = -1
		})
		t.Logf("flat %d cycles; flat-without-inlining %d cycles",
			int(full.CyclesPerPk), int(noInline.CyclesPerPk))
		if noInline.CyclesPerPk <= full.CyclesPerPk {
			t.Errorf("disabling inlining should cost cycles: %.0f <= %.0f",
				noInline.CyclesPerPk, full.CyclesPerPk)
		}
	})

	t.Run("cse", func(t *testing.T) {
		// Without CSE, the inlined pipeline re-reads packet fields.
		noCSE := measureTuned(t, flat, packets, func(o *build.Options) {
			o.DisableCSE = true
		})
		t.Logf("flat %d cycles; flat-without-cse %d cycles",
			int(full.CyclesPerPk), int(noCSE.CyclesPerPk))
		if noCSE.CyclesPerPk <= full.CyclesPerPk {
			t.Errorf("disabling CSE should cost cycles: %.0f <= %.0f",
				noCSE.CyclesPerPk, full.CyclesPerPk)
		}
	})

	t.Run("icache", func(t *testing.T) {
		// A large cache reduces the stall column to cold-start noise
		// (compulsory misses amortized over the run).
		mod := measureTuned(t, clack.Variant{}, packets, nil)
		big := measureTuned(t, clack.Variant{}, packets, func(o *build.Options) {
			o.Costs.ICacheBytes = 1 << 20
		})
		t.Logf("modular stalls: %.1f/packet (2 KB cache) vs %.1f/packet (1 MB cache)",
			mod.StallsPerPk, big.StallsPerPk)
		if big.StallsPerPk > mod.StallsPerPk/10 {
			t.Errorf("1 MB cache should cut stalls by >10x: %.1f vs %.1f",
				big.StallsPerPk, mod.StallsPerPk)
		}
	})

	t.Run("sequential-prefetch", func(t *testing.T) {
		// Without sequential prefetch, flattened (straight-line) code
		// pays full misses and its stall advantage over modular shrinks
		// or reverses.
		noPrefFlat := measureTuned(t, flat, packets, func(o *build.Options) {
			o.Costs.ICacheSeqMiss = o.Costs.ICacheMiss
		})
		noPrefMod := measureTuned(t, clack.Variant{}, packets, func(o *build.Options) {
			o.Costs.ICacheSeqMiss = o.Costs.ICacheMiss
		})
		mod := measureTuned(t, clack.Variant{}, packets, nil)
		advWith := mod.StallsPerPk - full.StallsPerPk
		advWithout := noPrefMod.StallsPerPk - noPrefFlat.StallsPerPk
		t.Logf("stall advantage of flat over modular: with prefetch %.0f, without %.0f",
			advWith, advWithout)
		if advWithout >= advWith {
			t.Errorf("sequential prefetch should be what favours flattening: %.0f >= %.0f",
				advWithout, advWith)
		}
	})
}

func benchAblation(b *testing.B, v clack.Variant, tune func(*build.Options)) {
	packets := b.N
	if packets < 50 {
		packets = 50
	}
	meas := measureTuned(b, v, packets, tune)
	b.ReportMetric(meas.CyclesPerPk, "cycles/packet")
	b.ReportMetric(meas.StallsPerPk, "stalls/packet")
}

func BenchmarkAblationFlatNoInlining(b *testing.B) {
	benchAblation(b, clack.Variant{Flattened: true}, func(o *build.Options) { o.InlineLimit = -1 })
}

func BenchmarkAblationFlatNoCSE(b *testing.B) {
	benchAblation(b, clack.Variant{Flattened: true}, func(o *build.Options) { o.DisableCSE = true })
}

func BenchmarkAblationFlatInline64(b *testing.B) {
	benchAblation(b, clack.Variant{Flattened: true}, func(o *build.Options) { o.InlineLimit = 64 })
}

func BenchmarkAblationFlatNoPrefetch(b *testing.B) {
	benchAblation(b, clack.Variant{Flattened: true}, func(o *build.Options) {
		o.Costs.ICacheSeqMiss = o.Costs.ICacheMiss
	})
}

func BenchmarkAblationModularBigICache(b *testing.B) {
	benchAblation(b, clack.Variant{}, func(o *build.Options) {
		o.Costs.ICacheBytes = 1 << 20
	})
}

func BenchmarkAblationFlatUnoptimized(b *testing.B) {
	benchAblation(b, clack.Variant{Flattened: true}, func(o *build.Options) {
		o.Optimize = false
		o.Costs = func() machine.Costs { c := machine.DefaultCosts(); c.ICacheBytes = 2048; c.FuncPad = 64; return c }()
	})
}
