module knit

go 1.22
