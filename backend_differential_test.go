// Backend differential equivalence tests: the compiled closure backend
// (internal/machine.BackendCompiled) is a pure execution accelerator,
// so for every system shipped in the repo — each .unit fixture under
// examples/ and cmd/knit/testdata/, the Clack router, and the
// OSKit-style kernels — running under the compiled backend must be
// observationally identical to the reference interpreter: the same
// values, console and serial output, trap identities (kind, function,
// pc, unit attribution), init/fini lifecycle event sequences,
// instruction and call counts, and final memory image.
//
// The one sanctioned difference is cycle accounting: the compiled
// backend does not model instruction fetch, so its Cycles must equal
// the interpreter's Cycles minus the interpreter's Stalls, and its own
// stall and I-cache counters must stay zero. Raw cycles and
// stopwatch-derived metrics are therefore never compared directly
// across backends.
//
// Fixture discovery is shared with differential_test.go
// (discoverUnitFixtures), so adding an example adds it to this suite
// too.
package knit

import (
	"errors"
	"fmt"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"knit/internal/clack"
	"knit/internal/knit/build"
	"knit/internal/machine"
	"knit/internal/oskit"
)

// backendFuel bounds every export run. It is far above what any fixture
// needs, and a fixture that does exhaust it must trap at the same call
// under both backends — fuel parity is part of the contract.
const backendFuel = 5_000_000

// lifecycleRecorder captures the build layer's init/fini event stream
// for one machine, so the schedules' execution (not just their static
// order) is compared across backends.
type lifecycleRecorder struct{ events []string }

func (r *lifecycleRecorder) LifecycleEvent(instance, op string) {
	r.events = append(r.events, op+" "+instance)
}

// fmtBackendErr renders an error for cross-backend comparison. Traps
// collapse to their stable identity — kind, function, pc, and unit
// attribution — which is exactly what the backend contract promises to
// preserve.
func fmtBackendErr(err error) string {
	if err == nil {
		return "ok"
	}
	var tr *machine.Trap
	if errors.As(err, &tr) {
		return fmt.Sprintf("trap[%v] in %s+%d unit %q: %s", tr.Kind, tr.Func, tr.PC, tr.Unit, tr.Msg)
	}
	return "error: " + err.Error()
}

// backendTrace executes one built system start to finish — init
// schedule, every exported symbol of every top-level bundle in sorted
// order, fini schedule — and records each backend-independent
// observable as one line. The machine is returned for the counter and
// memory comparisons that do not fit the line format.
func backendTrace(t *testing.T, res *build.Result, backend machine.Backend) ([]string, *machine.M) {
	t.Helper()
	res.Backend = backend
	m := res.NewMachine()
	m.Fuel = backendFuel
	con := machine.InstallConsole(m)
	ser := machine.InstallSerial(m)
	machine.InstallStopWatch(m)
	rec := &lifecycleRecorder{}
	res.SetObserver(m, rec)

	var lines []string
	add := func(format string, a ...any) { lines = append(lines, fmt.Sprintf(format, a...)) }

	add("init: %s", fmtBackendErr(res.RunInit(m)))
	var bundles []string
	for b := range res.Program.Exports {
		bundles = append(bundles, b)
	}
	sort.Strings(bundles)
	for _, b := range bundles {
		w := res.Program.Exports[b]
		syms := w.Provider.ExportSyms[w.Bundle]
		var names []string
		for s := range syms {
			names = append(names, s)
		}
		sort.Strings(names)
		for _, s := range names {
			global := syms[s]
			// Small positive arguments: enough to drive iteration-count
			// style entry points a few laps without long runs.
			var args []int64
			if fn := m.Img.Entry[global]; fn != nil {
				args = make([]int64, fn.NArgs)
				for i := range args {
					args[i] = 3
				}
			}
			v, err := m.Run(global, args...)
			add("run %s.%s%v = %d, %s", b, s, args, v, fmtBackendErr(err))
		}
	}
	add("fini: %s", fmtBackendErr(res.RunFini(m)))
	add("events: %v", rec.events)
	add("console: %q", con.String())
	add("serial: %q", ser.String())
	add("counters: executed=%d calls=%d indcalls=%d builtins=%d",
		m.Executed, m.Calls, m.IndCalls, m.BuiltinCnt)
	return lines, m
}

// assertBackendMachines checks the machine-level halves of the backend
// contract after two equivalent runs: identical memory images, and the
// cycle identity Cycles(compiled) == Cycles(interp) − Stalls(interp)
// with the compiled fetch model fully off.
func assertBackendMachines(t *testing.T, mi, mc *machine.M) {
	t.Helper()
	if mc.Stalls != 0 || mc.ICacheRefs != 0 || mc.ICacheMiss != 0 {
		t.Errorf("compiled backend ran the fetch model: stalls=%d refs=%d misses=%d",
			mc.Stalls, mc.ICacheRefs, mc.ICacheMiss)
	}
	if mc.Cycles != mi.Cycles-mi.Stalls {
		t.Errorf("cycle identity broken: compiled %d, interp %d − %d stalls = %d",
			mc.Cycles, mi.Cycles, mi.Stalls, mi.Cycles-mi.Stalls)
	}
	if len(mi.Mem) != len(mc.Mem) {
		t.Fatalf("memory sizes differ: interp %d, compiled %d", len(mi.Mem), len(mc.Mem))
	}
	for a := range mi.Mem {
		if mi.Mem[a] != mc.Mem[a] {
			t.Fatalf("memory diverges at address %d: interp %d, compiled %d", a, mi.Mem[a], mc.Mem[a])
		}
	}
}

// assertBackendAgreement builds one configuration twice (builds are
// deterministic; differential_test.go pins that separately), runs the
// full trace under each backend, and diffs every observable.
func assertBackendAgreement(t *testing.T, buildFn func() (*build.Result, error)) {
	t.Helper()
	resI, err := buildFn()
	if err != nil {
		t.Fatalf("interp build: %v", err)
	}
	resC, err := buildFn()
	if err != nil {
		t.Fatalf("compiled build: %v", err)
	}
	li, mi := backendTrace(t, resI, machine.BackendInterp)
	lc, mc := backendTrace(t, resC, machine.BackendCompiled)
	for i := 0; i < len(li) || i < len(lc); i++ {
		get := func(l []string) string {
			if i < len(l) {
				return l[i]
			}
			return "<missing>"
		}
		if get(li) != get(lc) {
			t.Errorf("trace line %d:\n  interp:   %s\n  compiled: %s", i, get(li), get(lc))
		}
	}
	assertBackendMachines(t, mi, mc)
}

// TestBackendDifferentialUnitFiles covers every buildable root of every
// .unit file under examples/ and cmd/knit/testdata/, in both modular
// and flattened-optimized form.
func TestBackendDifferentialUnitFiles(t *testing.T) {
	for _, fx := range discoverUnitFixtures(t, "examples", filepath.Join("cmd", "knit", "testdata")) {
		fx := fx
		if len(fx.roots) == 0 {
			continue // dynamic-module files; covered by the machine-level fuzzers
		}
		t.Run(fx.name, func(t *testing.T) {
			for _, root := range fx.roots {
				root := root
				t.Run(root, func(t *testing.T) {
					assertBackendAgreement(t, func() (*build.Result, error) {
						return build.Build(build.Options{
							Top: root, UnitFiles: fx.unitFiles, Sources: fx.sources,
						})
					})
				})
				t.Run(root+"/flattened", func(t *testing.T) {
					assertBackendAgreement(t, func() (*build.Result, error) {
						return build.Build(build.Options{
							Top: root, UnitFiles: fx.unitFiles, Sources: fx.sources,
							Optimize: true, Flatten: true,
						})
					})
				})
			}
		})
	}
}

// TestBackendDifferentialClackRouter streams the default traffic mix
// through the router under both backends and compares everything the
// simulated NICs observed: per-device receive and transmit counts,
// drops, TTL-checked transmissions, and malformed-transmission reports
// — plus the standard machine-level contract. Stopwatch-derived
// cycles-per-packet are deliberately not compared; the fetch model
// difference makes them backend-specific by design.
func TestBackendDifferentialClackRouter(t *testing.T) {
	for _, v := range []clack.Variant{{}, {Flattened: true}} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			run := func(backend machine.Backend) (*clack.Measurement, *machine.M) {
				res, err := clack.BuildRouter(v)
				if err != nil {
					t.Fatalf("%v build: %v", backend, err)
				}
				res.Backend = backend
				var m *machine.M
				meas, err := clack.RunRouterWith(res, clack.DefaultTraffic(600),
					func(mm *machine.M) { m = mm })
				if err != nil {
					t.Fatalf("%v run: %v", backend, err)
				}
				return meas, m
			}
			mi2, mi := run(machine.BackendInterp)
			mc2, mc := run(machine.BackendCompiled)
			if !reflect.DeepEqual(mi2.Stats, mc2.Stats) {
				t.Errorf("device stats differ:\n  interp:   %+v\n  compiled: %+v", mi2.Stats, mc2.Stats)
			}
			if mi2.Forwarded != mc2.Forwarded || mi2.Dropped != mc2.Dropped || mi2.Packets != mc2.Packets {
				t.Errorf("packet outcomes differ: interp fwd=%d drop=%d n=%d, compiled fwd=%d drop=%d n=%d",
					mi2.Forwarded, mi2.Dropped, mi2.Packets, mc2.Forwarded, mc2.Dropped, mc2.Packets)
			}
			if mi.Executed != mc.Executed || mi.Calls != mc.Calls ||
				mi.IndCalls != mc.IndCalls || mi.BuiltinCnt != mc.BuiltinCnt {
				t.Errorf("counters differ: interp exec=%d calls=%d ind=%d bi=%d, compiled exec=%d calls=%d ind=%d bi=%d",
					mi.Executed, mi.Calls, mi.IndCalls, mi.BuiltinCnt,
					mc.Executed, mc.Calls, mc.IndCalls, mc.BuiltinCnt)
			}
			assertBackendMachines(t, mi, mc)
		})
	}
}

// TestBackendDifferentialOskitKernels runs the OSKit-style kernel
// configurations through the full trace comparison.
func TestBackendDifferentialOskitKernels(t *testing.T) {
	for _, top := range []string{"FsKernel", "BigKernel"} {
		top := top
		t.Run(top, func(t *testing.T) {
			assertBackendAgreement(t, func() (*build.Result, error) {
				return oskit.BuildKernel(top, build.Options{Optimize: true})
			})
		})
	}
}
