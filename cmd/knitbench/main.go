// Command knitbench regenerates every table and figure of the paper's
// evaluation on the simulated machine, printing the paper's numbers next
// to the measured ones.
//
// Usage:
//
//	knitbench [-table1] [-table2] [-micro] [-census] [-buildtime] [-fig1c] [-packets N]
//
// With no selection flags, everything runs.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"knit/internal/clack"
	"knit/internal/click"
	"knit/internal/cmini"
	"knit/internal/compile"
	"knit/internal/knit/build"
	"knit/internal/knit/supervise"
	"knit/internal/ldlink"
	"knit/internal/machine"
	"knit/internal/oskit"
)

func main() {
	var (
		table1    = flag.Bool("table1", false, "Clack router variants (Table 1)")
		table2    = flag.Bool("table2", false, "Click router, unoptimized vs optimized (Table 2)")
		micro     = flag.Bool("micro", false, "Knit vs traditional build micro-benchmark (§6)")
		census    = flag.Bool("census", false, "constraint census on a 100-unit kernel (§5)")
		buildtime = flag.Bool("buildtime", false, "build-time breakdown (§6)")
		fig1c     = flag.Bool("fig1c", false, "interposition with ld vs Knit (Figure 1c)")
		ablations = flag.Bool("ablations", false, "mechanism ablations for the Table 1 result")
		recovery  = flag.Bool("recovery", false, "fault-to-restored-service latency, restart vs fallback swap")
		observeF  = flag.Bool("observe", false, "observability overhead: clack router with a metrics collector attached vs not")
		fleetF    = flag.Bool("fleet", false, "sharded serving scaling curve: pps at 1, 2, and 4 shards")
		overloadB = flag.Bool("overload", false, "overload soak quality envelope: goodput, shed fraction, p99 at 3x capacity with shard kills")
		jsonOut   = flag.Bool("json", false, "write BENCH_router.json and BENCH_buildtime.json (see -out) and exit")
		outDir    = flag.String("out", ".", "with -json, output directory for the BENCH_*.json files")
		gateDir   = flag.String("gate", "", "compare fresh measurements against the BENCH_*.json baselines in this directory and fail on regression")
		tolerance = flag.Float64("tolerance", 0.25, "with -gate, allowed fractional regression (0.25 = 25%)")
		packets   = flag.Int("packets", 2000, "router workload size")
		backendF  = flag.String("backend", "", "execution backend for -fleet serving runs: interp (default) or compiled")
	)
	flag.Parse()

	backend, err := machine.ParseBackend(*backendF)
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		runJSON(*outDir, *packets)
		return
	}
	if *gateDir != "" {
		runGate(*gateDir, *tolerance, *packets)
		return
	}
	if *observeF {
		runObserve(*packets)
		return
	}
	if *fleetF {
		runFleetBench(*packets, backend)
		return
	}
	if *overloadB {
		runOverloadBench(*packets, backend)
		return
	}
	all := !(*table1 || *table2 || *micro || *census || *buildtime || *fig1c || *ablations || *recovery)

	if all || *fig1c {
		runFig1c()
	}
	if all || *micro {
		runMicro()
	}
	if all || *census {
		runCensus()
	}
	if all || *buildtime {
		runBuildTime()
	}
	if all || *table1 {
		runTable1(*packets)
	}
	if all || *table2 {
		runTable2(*packets)
	}
	if all || *ablations {
		runAblations(*packets)
	}
	if all || *recovery {
		runRecovery()
	}
}

// runRecovery measures the supervision layer's fault-to-restored-service
// latency: the wall time from the moment the policy decides on a remedy
// to the moment the router serves again, for the two remedies — restart
// (reset the instance's data, re-run its initializers) and fallback swap
// (compile, dynamically load, and interpose the declared fallback unit).
// Backoff is zeroed so the numbers isolate mechanism cost from policy
// delay.
func runRecovery() {
	fmt.Println("== Recovery latency: restart vs fallback swap ==")
	res, err := clack.BuildRouter(clack.Variant{})
	if err != nil {
		fail(err)
	}
	pol := supervise.Default()
	pol.BaseBackoff = 0
	byMode := map[string][]time.Duration{}
	const trials = 30
	for i := 0; i < trials; i++ {
		rep, err := clack.ServeSupervised(res, clack.DefaultTraffic(1000), pol,
			supervise.Wall(), 50)
		if err != nil {
			fail(err)
		}
		if rep.Goodput < 0.90 || !rep.Converged {
			fail(fmt.Errorf("trial %d: goodput %.4f converged=%v", i, rep.Goodput, rep.Converged))
		}
		for _, r := range rep.Recoveries {
			byMode[r.Mode] = append(byMode[r.Mode], r.Latency)
		}
	}
	for _, mode := range []string{"restart", "swap"} {
		lat := byMode[mode]
		if len(lat) == 0 {
			fail(fmt.Errorf("no %s recoveries measured", mode))
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		fmt.Printf("   %-8s n=%3d  p50 %10v  p99 %10v\n", mode, len(lat),
			percentile(lat, 50), percentile(lat, 99))
	}
	fmt.Println()
}

// percentile returns the p-th percentile of sorted durations
// (nearest-rank).
func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := (p*len(sorted) + 99) / 100
	if i < 1 {
		i = 1
	}
	if i > len(sorted) {
		i = len(sorted)
	}
	return sorted[i-1]
}

// runAblations quantifies each mechanism behind the Table 1 flattening
// result by disabling it in the flattened build.
func runAblations(packets int) {
	fmt.Println("== Ablations: what the flattening win is made of ==")
	spec := clack.DefaultTraffic(packets)
	measure := func(label string, v clack.Variant, tune func(*build.Options)) {
		res, err := clack.BuildRouterTuned(v, tune)
		if err != nil {
			fail(err)
		}
		meas, err := clack.RunRouter(res, spec)
		if err != nil {
			fail(err)
		}
		fmt.Printf("   %-28s %6.0f cycles/packet  %5.0f stalls\n",
			label, meas.CyclesPerPk, meas.StallsPerPk)
	}
	flat := clack.Variant{Flattened: true}
	measure("flattened (full)", flat, nil)
	measure("  - without inlining", flat, func(o *build.Options) { o.InlineLimit = -1 })
	measure("  - without CSE", flat, func(o *build.Options) { o.DisableCSE = true })
	measure("  - inline limit 64", flat, func(o *build.Options) { o.InlineLimit = 64 })
	measure("  - no sequential prefetch", flat, func(o *build.Options) {
		o.Costs.ICacheSeqMiss = o.Costs.ICacheMiss
	})
	measure("modular (reference)", clack.Variant{}, nil)
	measure("  - with 1 MB I-cache", clack.Variant{}, func(o *build.Options) {
		o.Costs.ICacheBytes = 1 << 20
	})
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "knitbench:", err)
	os.Exit(1)
}

// pctOf renders part as a percentage of whole, zero when whole is zero.
func pctOf(part, whole time.Duration) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func runTable1(packets int) {
	fmt.Println("== Table 1: Clack router performance (cycles per packet) ==")
	fmt.Println("   paper: modular 2411 | hand 1897 (-21%) | flattened 1574 (-35%) | both 1457 (-40%)")
	fmt.Println("   paper stalls: 781 | 637 | 455 | 361; text: 109464 | 108246 | 106065 | 106305")
	spec := clack.DefaultTraffic(packets)
	var base float64
	for _, v := range []clack.Variant{{}, {HandOptimized: true}, {Flattened: true},
		{HandOptimized: true, Flattened: true}} {
		m, err := clack.MeasureVariant(v, spec)
		if err != nil {
			fail(err)
		}
		if base == 0 {
			base = m.CyclesPerPk
		}
		fmt.Printf("   %-10s %7.0f cycles (%+5.1f%%)  %6.0f i-fetch stalls  %7d text bytes\n",
			m.Variant, m.CyclesPerPk, 100*(m.CyclesPerPk-base)/base,
			m.StallsPerPk, m.TextBytes)
	}
	fmt.Println()
}

func runTable2(packets int) {
	fmt.Println("== Table 2: Click router performance (cycles per packet) ==")
	fmt.Println("   paper: unoptimized 2486 | optimized 1146 (-54%)")
	spec := clack.DefaultTraffic(packets)
	base, err := click.Measure(click.Options{}, spec)
	if err != nil {
		fail(err)
	}
	optim, err := click.Measure(click.All(), spec)
	if err != nil {
		fail(err)
	}
	fmt.Printf("   unoptimized %7.0f cycles\n", base.CyclesPerPk)
	fmt.Printf("   optimized   %7.0f cycles (%.0f%% improvement)\n",
		optim.CyclesPerPk, 100*(1-optim.CyclesPerPk/base.CyclesPerPk))
	clackBase, err := clack.MeasureVariant(clack.Variant{}, spec)
	if err != nil {
		fail(err)
	}
	fmt.Printf("   (click base vs clack base: %+.1f%%; paper: +3%%)\n\n",
		100*(base.CyclesPerPk-clackBase.CyclesPerPk)/clackBase.CyclesPerPk)
}

func runMicro() {
	fmt.Println("== §6 micro-benchmark: Knit vs traditionally built (unit-boundary heavy) ==")
	fmt.Println("   paper: Knit from 2% slower to 3% faster, ±0.25%")
	for _, kernel := range []string{"FsKernel", "BigKernel"} {
		res, err := oskit.RunMicroKernel(kernel, 2000)
		if err != nil {
			fail(err)
		}
		fmt.Printf("   %-9s knit %.1f cycles/op, traditional %.1f cycles/op, delta %+.2f%% (%d units)\n",
			res.Kernel, res.KnitCycles, res.TradCycles, res.DeltaPct, res.UnitsTotal)
	}
	fmt.Println()
}

func runCensus() {
	fmt.Println("== §5 constraint census: ~100-unit kernel ==")
	fmt.Println("   paper: 100 units, 35 required constraints, 70% of those pure propagation")
	units, sources, top := oskit.CensusKernel(100, 35)
	res, err := build.Build(build.Options{
		Top:       top,
		UnitFiles: map[string]string{"census.unit": units},
		Sources:   sources,
		Check:     true,
	})
	if err != nil {
		fail(err)
	}
	annotated, propagating := 0, 0
	for _, inst := range res.Program.Instances {
		if len(inst.Unit.Constraints) == 0 {
			continue
		}
		annotated++
		for _, c := range inst.Unit.Constraints {
			if !c.RHS.IsValue() {
				propagating++
				break
			}
		}
	}
	fmt.Printf("   %d units, %d annotated, %d propagation-only; checker: %d vars, %d relations — PASS\n\n",
		len(res.Program.Instances), annotated, propagating,
		res.ConstraintReport.Vars, res.ConstraintReport.Relations)
}

func runBuildTime() {
	fmt.Println("== §6 build-time breakdown ==")
	fmt.Println("   paper: >95% of build time in the C compiler and linker;")
	fmt.Println("   constraint checking more than doubles Knit-proper time")
	const rounds = 10
	// Compiler/loader share, on a code-heavy build (the Clack router):
	// cold (empty content-hash cache) next to warm (every translation
	// unit cached by the immediately preceding build), plus a parallel
	// cold build to show the worker pool.
	var cold, warm, par build.Timings
	jobs := runtime.GOMAXPROCS(0)
	for i := 0; i < rounds; i++ {
		cache := build.NewCache()
		withCache := func(o *build.Options) { o.Cache = cache; o.Parallelism = 1 }
		resCold, err := clack.BuildRouterTuned(clack.Variant{}, withCache)
		if err != nil {
			fail(err)
		}
		cold.Add(resCold.Timings)
		resWarm, err := clack.BuildRouterTuned(clack.Variant{}, withCache)
		if err != nil {
			fail(err)
		}
		warm.Add(resWarm.Timings)
		resPar, err := clack.BuildRouterTuned(clack.Variant{},
			func(o *build.Options) { o.Parallelism = jobs })
		if err != nil {
			fail(err)
		}
		par.Add(resPar.Timings)
	}
	fmt.Println("   (clack router) per-phase, averaged over", rounds, "builds:")
	fmt.Printf("      %-9s %12s %7s  %12s %7s\n", "", "cold", "", "warm", "")
	warmPhases := warm.Phases()
	for i, p := range cold.Phases() {
		w := warmPhases[i]
		fmt.Printf("      %-9s %12v  %5.1f%%  %12v  %5.1f%%\n",
			p.Name, (p.D / rounds).Round(time.Microsecond), pctOf(p.D, cold.Total()),
			(w.D / rounds).Round(time.Microsecond), pctOf(w.D, warm.Total()))
	}
	fmt.Printf("      cache: cold %d/%d hits, warm %d/%d hits\n",
		cold.CacheHits/rounds, cold.CompileJobs/rounds,
		warm.CacheHits/rounds, warm.CompileJobs/rounds)
	fmt.Printf("   (clack router) compiler+loader: %.1f%% of cold build time\n",
		pctOf(cold.CompilerAndLoader(), cold.Total()))
	fmt.Printf("   (clack router) warm compiler+loader %v = %.1f%% of cold %v (target <= 20%%)\n",
		(warm.CompilerAndLoader() / rounds).Round(time.Microsecond),
		pctOf(warm.CompilerAndLoader(), cold.CompilerAndLoader()),
		(cold.CompilerAndLoader() / rounds).Round(time.Microsecond))
	fmt.Printf("   (clack router) parallel compile (-j %d) %v vs serial %v (x%.1f)\n",
		jobs, (par.Compile / rounds).Round(time.Microsecond),
		(cold.Compile / rounds).Round(time.Microsecond),
		float64(cold.Compile)/float64(par.Compile))

	// Constraint-checking cost, on the constraint-heavy census kernel.
	var knit, knitChecked time.Duration
	units, sources, top := oskit.CensusKernel(100, 35)
	for i := 0; i < rounds; i++ {
		opts := build.Options{Top: top,
			UnitFiles: map[string]string{"census.unit": units},
			Sources:   sources, Optimize: true}
		res, err := build.Build(opts)
		if err != nil {
			fail(err)
		}
		knit += res.Timings.KnitProper()
		opts.Check = true
		res2, err := build.Build(opts)
		if err != nil {
			fail(err)
		}
		knitChecked += res2.Timings.KnitProper()
	}
	fmt.Printf("   (100-unit kernel) knit-proper %v -> %v with constraint checking (x%.2f)\n\n",
		knit/rounds, knitChecked/rounds, float64(knitChecked)/float64(knit))
}

func runFig1c() {
	fmt.Println("== Figure 1(c): interposing a logger between client and server ==")
	srcClient := `
extern int serve_web(int req);
int handle(int req) { return serve_web(req); }
`
	srcServer := `int serve_web(int req) { return req + 1000; }`
	srcLogger := `
int serve_unlogged(int req);
static int logged = 0;
int serve_logged(int req) { logged++; return serve_unlogged(req); }
`
	co := func(name, src string) *ldlink.Item {
		f, err := cmini.Parse(name, src)
		if err != nil {
			fail(err)
		}
		o, err := compile.Compile(f, compile.Options{})
		if err != nil {
			fail(err)
		}
		it := ldlink.Obj(o)
		return &it
	}
	// With ld, the logger must define serve_web to be seen by the client
	// while importing serve_web from the server: one name, two meanings.
	loggerForLd := `
extern int serve_web(int req);
static int logged = 0;
int serve_web(int req) { logged++; return serve_web(req); }
`
	_, err := ldlink.Link([]ldlink.Item{
		*co("client.c", srcClient), *co("logger.c", loggerForLd), *co("server.c", srcServer),
	}, ldlink.Options{})
	var md *ldlink.MultipleDefinitionError
	if errors.As(err, &md) {
		fmt.Printf("   ld:   %v\n", err)
	} else {
		fmt.Printf("   ld:   unexpectedly succeeded (%v)\n", err)
	}

	// With Knit, interposition is just wiring.
	units := `
bundletype Serve = { serve_web }
bundletype Main = { handle }
unit Server = { exports [ s : Serve ]; files { "server.c" }; }
unit Logger = {
  imports [ inner : Serve ];
  exports [ outer : Serve ];
  files { "logger.c" };
  rename { inner.serve_web to serve_unlogged; outer.serve_web to serve_logged; };
}
unit Client = { imports [ s : Serve ]; exports [ m : Main ]; files { "client.c" }; }
unit Wrapped = {
  exports [ m : Main ];
  link {
    [s] <- Server <- [];
    [w] <- Logger <- [s];
    [m] <- Client <- [w];
  };
}
`
	res, err := build.Build(build.Options{
		Top:       "Wrapped",
		UnitFiles: map[string]string{"fig1c.unit": units},
		Sources: map[string]string{
			"client.c": srcClient, "server.c": srcServer, "logger.c": srcLogger,
		},
	})
	if err != nil {
		fail(err)
	}
	m := res.NewMachine()
	v, err := res.Run(m, "m", "handle", 42)
	if err != nil {
		fail(err)
	}
	fmt.Printf("   knit: linked 3 units with the logger interposed; handle(42) = %d\n\n", v)
}
