package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"knit/internal/clack"
	"knit/internal/knit/build"
	"knit/internal/knit/observe"
	"knit/internal/machine"
)

// This file is the CI half of knitbench: machine-readable benchmark
// results (-json), the regression gate that compares them against
// committed baselines (-gate), and the observability overhead
// benchmark (-observe).
//
// Wall-clock numbers are not comparable across machines, so every
// result carries calib_ns — the time a fixed pure-CPU reference loop
// takes on the measuring host. The gate normalizes wall metrics by the
// calibration ratio before applying the tolerance; cycles-per-packet is
// fully deterministic (simulated cycles) and is compared directly.

// RouterBench is BENCH_router.json. The interp and compiled halves each
// carry their own cycles-per-packet: the compiled backend has no
// instruction-fetch model, so its (deterministic) cycle figure is lower
// by exactly the interpreter's stall count and the two are never
// compared against each other — only against their own baselines.
type RouterBench struct {
	Bench              string  `json:"bench"`
	Packets            int     `json:"packets"`
	CyclesPerPacket    float64 `json:"cycles_per_packet"`
	PacketsPerSec      float64 `json:"packets_per_sec"`
	ObserveOverheadPct float64 `json:"observe_overhead_pct"`
	// CompiledCyclesPerPacket is the compiled backend's deterministic
	// per-packet cycle count (interp cycles minus i-fetch stalls).
	CompiledCyclesPerPacket float64 `json:"compiled_cycles_per_packet"`
	// CompiledPacketsPerSec is wall throughput under the compiled
	// backend; CompiledSpeedup is its ratio over the interpreter's,
	// measured back-to-back on the same host (calibration cancels).
	CompiledPacketsPerSec float64 `json:"compiled_packets_per_sec"`
	CompiledSpeedup       float64 `json:"compiled_speedup"`
	CalibNs               int64   `json:"calib_ns"`
}

// BuildTimeBench is BENCH_buildtime.json.
type BuildTimeBench struct {
	Bench          string  `json:"bench"`
	ColdNs         int64   `json:"cold_ns"`
	WarmNs         int64   `json:"warm_ns"`
	ParallelNs     int64   `json:"parallel_ns"`
	WarmFracOfCold float64 `json:"warm_frac_of_cold"`
	CacheHits      int     `json:"cache_hits"`
	CompileJobs    int     `json:"compile_jobs"`
	CalibNs        int64   `json:"calib_ns"`
}

// FleetBench is BENCH_fleet.json: the sharded-serving scaling curve.
// Packets-per-second figures are wall-clock (gate-compared in
// calibration units); ScalingEfficiency is pps at 4 shards over 4x the
// single-shard pps, so 1.0 is linear scaling. Efficiency depends on the
// host's core count — GoMaxProcs records what the baseline had — and
// the gate treats the committed value as a floor: a machine with more
// cores only beats it.
type FleetBench struct {
	Bench             string  `json:"bench"`
	Backend           string  `json:"backend"`
	Packets           int     `json:"packets"`
	GoMaxProcs        int     `json:"gomaxprocs"`
	PPS1              float64 `json:"pps_1shard"`
	PPS2              float64 `json:"pps_2shards"`
	PPS4              float64 `json:"pps_4shards"`
	ScalingEfficiency float64 `json:"scaling_efficiency"`
	CalibNs           int64   `json:"calib_ns"`
}

// OverloadBench is BENCH_overload.json: the overload soak's quality
// envelope at 3x measured capacity with a shard killed every 50
// packets. AcceptedGoodput and the zero-violation invariants are
// asserted at measurement time; the gate re-checks goodput as a hard
// floor and compares capacity (calibration units) and the p99 cycle
// bucket against the baseline. ShedFraction is self-normalizing — the
// offered rate scales with the measured capacity — and gets a hard
// ceiling rather than a baseline-relative band.
type OverloadBench struct {
	Bench           string  `json:"bench"`
	Backend         string  `json:"backend"`
	Packets         int     `json:"packets"`
	CapacityPPS     float64 `json:"capacity_pps"`
	AcceptedGoodput float64 `json:"accepted_goodput"`
	ShedFraction    float64 `json:"shed_fraction"`
	P99Cycles       int64   `json:"p99_cycles"`
	CalibNs         int64   `json:"calib_ns"`
}

// measureOverload runs the overload soak once and asserts on the spot
// the properties that make the numbers meaningful: exact conservation,
// zero per-flow order violations, zero drops (transient kills with
// redelivery), and actual chaos (respawns happened).
func measureOverload(packets int, backend machine.Backend) *OverloadBench {
	res, err := clack.BuildRouter(clack.Variant{})
	if err != nil {
		fail(err)
	}
	res.Backend = backend
	rep, err := clack.ServeOverload(res, clack.OverloadSpec{
		Packets:   packets,
		Flows:     64,
		Shards:    3,
		Multiple:  3,
		KillEvery: 50,
		Redeliver: 3,
		Seed:      1,
	})
	if err != nil {
		fail(err)
	}
	if !rep.ConservationOK {
		fail(fmt.Errorf("overload bench: conservation broken (submitted %d, served %d, dropped %d, shed %d)",
			rep.Submitted, rep.Served, rep.Dropped, rep.ShedTotal))
	}
	if rep.OrderViolations != 0 {
		fail(fmt.Errorf("overload bench: %d per-flow order violations", rep.OrderViolations))
	}
	if rep.Dropped != 0 {
		fail(fmt.Errorf("overload bench: %d batches dropped despite redelivery", rep.Dropped))
	}
	if rep.Respawns == 0 {
		fail(fmt.Errorf("overload bench: no respawns — the soak exercised nothing"))
	}
	return &OverloadBench{
		Bench:           "overload",
		Backend:         backend.String(),
		Packets:         packets,
		CapacityPPS:     rep.CapacityPPS,
		AcceptedGoodput: rep.AcceptedGoodput,
		ShedFraction:    rep.ShedFraction,
		P99Cycles:       rep.P99Cycles,
		CalibNs:         calibrate(),
	}
}

// runOverloadBench is knitbench -overload: print the soak's quality
// envelope for the current host, on the backend chosen with -backend.
func runOverloadBench(packets int, backend machine.Backend) {
	fmt.Println("== Overload soak: 3x capacity, kill every 50, admission + breakers + redelivery ==")
	ob := measureOverload(packets, backend)
	fmt.Printf("   %d packets, %s backend, capacity %.0f pps (host calib %v)\n",
		ob.Packets, ob.Backend, ob.CapacityPPS, time.Duration(ob.CalibNs))
	fmt.Printf("   accepted goodput %.4f (floor 0.99), shed fraction %.4f, p99 %d cycles\n\n",
		ob.AcceptedGoodput, ob.ShedFraction, ob.P99Cycles)
}

// measureFleet benchmarks sharded serving at 1, 2, and 4 shards over
// the same flow traffic (fastest of benchRounds each), asserting on
// every run the properties the fleet exists to provide: full packet
// accounting and zero per-flow order violations.
func measureFleet(packets int, backend machine.Backend) *FleetBench {
	res, err := clack.BuildRouter(clack.Variant{})
	if err != nil {
		fail(err)
	}
	res.Backend = backend
	spec := clack.DefaultFlowTraffic(packets)
	pps := map[int]float64{}
	for _, shards := range []int{1, 2, 4} {
		best := time.Duration(1) << 62
		for r := 0; r < benchRounds; r++ {
			start := time.Now()
			rep, err := clack.ServeFleet(res, spec, shards, nil, nil, 0)
			if err != nil {
				fail(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			if rep.Goodput != 1.0 || rep.OrderViolations != 0 || !rep.Converged {
				fail(fmt.Errorf("fleet bench %d shards: goodput %.4f, %d order violations, converged=%v",
					shards, rep.Goodput, rep.OrderViolations, rep.Converged))
			}
		}
		pps[shards] = float64(packets) / best.Seconds()
	}
	return &FleetBench{
		Bench:             "fleet",
		Backend:           backend.String(),
		Packets:           packets,
		GoMaxProcs:        runtime.GOMAXPROCS(0),
		PPS1:              pps[1],
		PPS2:              pps[2],
		PPS4:              pps[4],
		ScalingEfficiency: pps[4] / (4 * pps[1]),
		CalibNs:           calibrate(),
	}
}

// runFleetBench is knitbench -fleet: print the pps-vs-shards scaling
// curve for the current host, on the backend chosen with -backend.
func runFleetBench(packets int, backend machine.Backend) {
	fmt.Println("== Fleet scaling: sharded router serving, one shared image ==")
	fb := measureFleet(packets, backend)
	fmt.Printf("   %d packets, %s backend, GOMAXPROCS %d, host calib %v\n",
		fb.Packets, fb.Backend, fb.GoMaxProcs, time.Duration(fb.CalibNs))
	for _, p := range []struct {
		shards int
		pps    float64
	}{{1, fb.PPS1}, {2, fb.PPS2}, {4, fb.PPS4}} {
		fmt.Printf("   %d shards: %9.0f packets/sec  (x%.2f vs 1 shard)\n",
			p.shards, p.pps, p.pps/fb.PPS1)
	}
	fmt.Printf("   scaling efficiency at 4 shards: %.2f (1.0 = linear; needs >= 4 cores to approach it)\n\n",
		fb.ScalingEfficiency)
}

// calibrate times a fixed xorshift loop — a pure-CPU workload that does
// not touch this repository's code — taking the fastest of three runs.
// The gate divides wall metrics by it to factor out machine speed.
func calibrate() int64 {
	best := int64(1) << 62
	var sink uint64
	for r := 0; r < 3; r++ {
		start := time.Now()
		x := uint64(88172645463325252)
		for i := 0; i < 20_000_000; i++ {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			sink += x
		}
		if d := time.Since(start).Nanoseconds(); d < best {
			best = d
		}
	}
	if sink == 42 { // defeat dead-code elimination
		fmt.Fprintln(os.Stderr, "calibration sink hit")
	}
	return best
}

const benchRounds = 5

// measureRouter benchmarks the modular Clack router on both execution
// backends: deterministic cycles per packet, wall-clock packets per
// second (fastest of benchRounds each), the interp-vs-compiled wall
// speedup, and the instrumented-vs-uninstrumented overhead of an
// attached observe.Collector.
func measureRouter(packets int) *RouterBench {
	res, err := clack.BuildRouter(clack.Variant{})
	if err != nil {
		fail(err)
	}
	resC, err := clack.BuildRouter(clack.Variant{})
	if err != nil {
		fail(err)
	}
	resC.Backend = machine.BackendCompiled
	spec := clack.DefaultTraffic(packets)

	run := func(r *build.Result, prep func(*machine.M)) (*clack.Measurement, time.Duration) {
		var meas *clack.Measurement
		best := time.Duration(1) << 62
		for i := 0; i < benchRounds; i++ {
			start := time.Now()
			m, err := clack.RunRouterWith(r, spec, prep)
			if err != nil {
				fail(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
			meas = m
		}
		return meas, best
	}

	meas, plain := run(res, nil)
	instrumented, traced := run(res, func(m *machine.M) {
		c := observe.Attach(m)
		c.Trace(1024)
	})
	// Attaching the collector must not change the simulated machine.
	if instrumented.CyclesPerPk != meas.CyclesPerPk {
		fail(fmt.Errorf("observe collector changed the simulation: %.0f vs %.0f cycles/packet",
			instrumented.CyclesPerPk, meas.CyclesPerPk))
	}
	measC, compiled := run(resC, nil)
	// The compiled backend is faster wall-clock but cycle-cheaper only
	// by the fetch model: packet outcomes must be identical.
	if measC.Forwarded != meas.Forwarded || measC.Dropped != meas.Dropped {
		fail(fmt.Errorf("backends disagree on packet outcomes: interp fwd=%d drop=%d, compiled fwd=%d drop=%d",
			meas.Forwarded, meas.Dropped, measC.Forwarded, measC.Dropped))
	}

	pps := float64(meas.Packets) / plain.Seconds()
	ppsC := float64(measC.Packets) / compiled.Seconds()
	return &RouterBench{
		Bench:                   "router",
		Packets:                 packets,
		CyclesPerPacket:         meas.CyclesPerPk,
		PacketsPerSec:           pps,
		ObserveOverheadPct:      100 * (traced.Seconds() - plain.Seconds()) / plain.Seconds(),
		CompiledCyclesPerPacket: measC.CyclesPerPk,
		CompiledPacketsPerSec:   ppsC,
		CompiledSpeedup:         ppsC / pps,
		CalibNs:                 calibrate(),
	}
}

// measureBuildTime benchmarks the build pipeline on the Clack router:
// cold (empty compile cache), warm (fully cached), and parallel cold
// builds, fastest of benchRounds each.
func measureBuildTime() *BuildTimeBench {
	jobs := runtime.GOMAXPROCS(0)
	cold := time.Duration(1) << 62
	warm := cold
	par := cold
	var hits, cjobs int
	for r := 0; r < benchRounds; r++ {
		cache := build.NewCache()
		withCache := func(o *build.Options) { o.Cache = cache; o.Parallelism = 1 }
		start := time.Now()
		if _, err := clack.BuildRouterTuned(clack.Variant{}, withCache); err != nil {
			fail(err)
		}
		if d := time.Since(start); d < cold {
			cold = d
		}
		start = time.Now()
		resWarm, err := clack.BuildRouterTuned(clack.Variant{}, withCache)
		if err != nil {
			fail(err)
		}
		if d := time.Since(start); d < warm {
			warm = d
		}
		hits, cjobs = resWarm.Timings.CacheHits, resWarm.Timings.CompileJobs
		start = time.Now()
		if _, err := clack.BuildRouterTuned(clack.Variant{},
			func(o *build.Options) { o.Parallelism = jobs }); err != nil {
			fail(err)
		}
		if d := time.Since(start); d < par {
			par = d
		}
	}
	return &BuildTimeBench{
		Bench:          "buildtime",
		ColdNs:         cold.Nanoseconds(),
		WarmNs:         warm.Nanoseconds(),
		ParallelNs:     par.Nanoseconds(),
		WarmFracOfCold: float64(warm) / float64(cold),
		CacheHits:      hits,
		CompileJobs:    cjobs,
		CalibNs:        calibrate(),
	}
}

// runObserve is knitbench -observe: the instrumentation overhead
// benchmark on the clack router hot path (target <5%).
func runObserve(packets int) {
	fmt.Println("== Observability overhead: clack router, collector attached vs not ==")
	rb := measureRouter(packets)
	fmt.Printf("   %d packets, %.0f cycles/packet (identical instrumented and not)\n",
		rb.Packets, rb.CyclesPerPacket)
	fmt.Printf("   uninstrumented throughput %.0f packets/sec (host calib %v)\n",
		rb.PacketsPerSec, time.Duration(rb.CalibNs))
	verdict := "PASS (< 5%)"
	if rb.ObserveOverheadPct >= 5 {
		verdict = "ABOVE the 5% target"
	}
	fmt.Printf("   collector+tracer overhead %+.2f%% — %s\n\n", rb.ObserveOverheadPct, verdict)
}

// runJSON is knitbench -json: write BENCH_router.json and
// BENCH_buildtime.json into outDir for the CI gate and baselines.
func runJSON(outDir string, packets int) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		fail(err)
	}
	rb := measureRouter(packets)
	bb := measureBuildTime()
	fb := measureFleet(packets, machine.BackendInterp)
	ob := measureOverload(packets, machine.BackendInterp)
	writeBench(filepath.Join(outDir, "BENCH_router.json"), rb)
	writeBench(filepath.Join(outDir, "BENCH_buildtime.json"), bb)
	writeBench(filepath.Join(outDir, "BENCH_fleet.json"), fb)
	writeBench(filepath.Join(outDir, "BENCH_overload.json"), ob)
	fmt.Printf("knitbench: wrote BENCH_router.json, BENCH_buildtime.json, BENCH_fleet.json, BENCH_overload.json in %s\n", outDir)
	fmt.Printf("  router: %.0f cycles/packet, %.0f packets/sec, observe overhead %+.2f%%\n",
		rb.CyclesPerPacket, rb.PacketsPerSec, rb.ObserveOverheadPct)
	fmt.Printf("  router compiled: %.0f cycles/packet (no fetch model), %.0f packets/sec (x%.2f vs interp)\n",
		rb.CompiledCyclesPerPacket, rb.CompiledPacketsPerSec, rb.CompiledSpeedup)
	fmt.Printf("  buildtime: cold %v, warm %v (%.1f%% of cold), parallel %v, cache %d/%d\n",
		time.Duration(bb.ColdNs), time.Duration(bb.WarmNs), 100*bb.WarmFracOfCold,
		time.Duration(bb.ParallelNs), bb.CacheHits, bb.CompileJobs)
	fmt.Printf("  fleet: %.0f pps @1 shard, %.0f @2, %.0f @4 (efficiency %.2f, GOMAXPROCS %d)\n",
		fb.PPS1, fb.PPS2, fb.PPS4, fb.ScalingEfficiency, fb.GoMaxProcs)
	fmt.Printf("  overload: capacity %.0f pps, goodput %.4f, shed %.4f, p99 %d cycles\n",
		ob.CapacityPPS, ob.AcceptedGoodput, ob.ShedFraction, ob.P99Cycles)
}

func writeBench(path string, v any) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fail(err)
	}
}

func readBench[T any](path string) *T {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	v := new(T)
	if err := json.Unmarshal(data, v); err != nil {
		fail(fmt.Errorf("%s: %w", path, err))
	}
	return v
}

// runGate is knitbench -gate: re-measure and compare against the
// committed baselines in baseDir, failing on a regression beyond tol
// (e.g. 0.25 = 25%). Deterministic metrics (simulated cycles per
// packet) compare directly; wall-clock metrics are normalized by each
// measurement's calibration so a slower CI host is not a regression.
func runGate(baseDir string, tol float64, packets int) {
	baseR := readBench[RouterBench](filepath.Join(baseDir, "BENCH_router.json"))
	baseB := readBench[BuildTimeBench](filepath.Join(baseDir, "BENCH_buildtime.json"))
	baseF := readBench[FleetBench](filepath.Join(baseDir, "BENCH_fleet.json"))
	baseO := readBench[OverloadBench](filepath.Join(baseDir, "BENCH_overload.json"))
	rb := measureRouter(packets)
	bb := measureBuildTime()
	fb := measureFleet(packets, machine.BackendInterp)
	ob := measureOverload(packets, machine.BackendInterp)

	var failures []string
	check := func(name string, current, baseline float64, lowerIsBetter bool) {
		var regressed bool
		var delta float64
		if lowerIsBetter {
			delta = current/baseline - 1
			regressed = current > baseline*(1+tol)
		} else {
			delta = 1 - current/baseline
			regressed = current < baseline*(1-tol)
		}
		verdict := "ok"
		if regressed {
			verdict = fmt.Sprintf("REGRESSED beyond %.0f%%", 100*tol)
			failures = append(failures, name)
		}
		fmt.Printf("  %-28s baseline %12.1f  current %12.1f  (%+.1f%%)  %s\n",
			name, baseline, current, 100*delta, verdict)
	}

	fmt.Printf("knitbench gate: tolerance %.0f%%, host calib %v (baseline %v)\n",
		100*tol, time.Duration(rb.CalibNs), time.Duration(baseR.CalibNs))
	// Simulated cycles are deterministic: no calibration needed.
	check("router cycles/packet", rb.CyclesPerPacket, baseR.CyclesPerPacket, true)
	// Throughput normalized to packets per calibration interval:
	// multiplying by the host's calibration time cancels machine speed
	// from both sides.
	check("router packets/calib",
		rb.PacketsPerSec*float64(rb.CalibNs)/1e9, baseR.PacketsPerSec*float64(baseR.CalibNs)/1e9, false)
	// The compiled backend's own deterministic cycles and calibrated
	// throughput, each against its own baseline — never cross-backend.
	check("compiled cycles/packet", rb.CompiledCyclesPerPacket, baseR.CompiledCyclesPerPacket, true)
	check("compiled packets/calib",
		rb.CompiledPacketsPerSec*float64(rb.CalibNs)/1e9,
		baseR.CompiledPacketsPerSec*float64(baseR.CalibNs)/1e9, false)
	// The speedup is a same-host ratio, so it gets a hard floor rather
	// than a baseline-relative tolerance: the compiled backend must stay
	// at least 5x the interpreter on the router workload.
	fmt.Printf("  %-28s floor %19.1f  current %12.1f\n", "compiled speedup (x)", 5.0, rb.CompiledSpeedup)
	if rb.CompiledSpeedup < 5.0 {
		failures = append(failures, "compiled speedup below 5x")
	}
	// Build times in calibration units.
	check("warm build (calib units)",
		float64(bb.WarmNs)/float64(bb.CalibNs), float64(baseB.WarmNs)/float64(baseB.CalibNs), true)
	check("cold build (calib units)",
		float64(bb.ColdNs)/float64(bb.CalibNs), float64(baseB.ColdNs)/float64(baseB.CalibNs), true)
	// Fleet throughput in calibration units, like the router's. The
	// efficiency check is a floor: the committed baseline records its
	// GOMAXPROCS, and any host with at least that many cores should meet
	// it — a drop beyond tolerance means the sharding machinery itself
	// regressed (lock contention, lost batching), not the host.
	check("fleet pps@1 shard (calib)",
		fb.PPS1*float64(fb.CalibNs)/1e9, baseF.PPS1*float64(baseF.CalibNs)/1e9, false)
	check("fleet pps@4 shards (calib)",
		fb.PPS4*float64(fb.CalibNs)/1e9, baseF.PPS4*float64(baseF.CalibNs)/1e9, false)
	// Scaling efficiency measures parallel speedup, which a single-core
	// run cannot express: with GOMAXPROCS=1 the shard goroutines
	// time-slice one core and the curve is flat by construction (the
	// measured value is dominated by scheduler noise). On such runs the
	// leg is advisory — printed, never failing — while the pps legs
	// above stay hard: a batching or balancing regression shows up in
	// them even on one core.
	if fb.GoMaxProcs <= 1 || runtime.GOMAXPROCS(0) <= 1 {
		fmt.Printf("  %-28s baseline %12.1f  current %12.1f  (%+.1f%%)  advisory: GOMAXPROCS=1 cannot scale\n",
			"fleet scaling efficiency", baseF.ScalingEfficiency, fb.ScalingEfficiency,
			100*(fb.ScalingEfficiency/baseF.ScalingEfficiency-1))
	} else {
		check("fleet scaling efficiency", fb.ScalingEfficiency, baseF.ScalingEfficiency, false)
	}

	// Overload soak. Accepted goodput is a hard floor, not
	// baseline-relative: the overload layer's contract is finishing what
	// it admits, on any host. Capacity rides the same calibration
	// normalization as the other throughput legs; the p99 cycle bucket is
	// simulated and compares directly. Shed fraction gets a hard ceiling —
	// offered load scales with measured capacity, so the fraction is
	// self-normalizing, and the conservation/order/drop invariants were
	// already asserted inside the measurement.
	fmt.Printf("  %-28s floor %19.2f  current %12.4f\n", "overload accepted goodput", 0.99, ob.AcceptedGoodput)
	if ob.AcceptedGoodput < 0.99 {
		failures = append(failures, "overload accepted goodput below 0.99")
	}
	check("overload capacity (calib)",
		ob.CapacityPPS*float64(ob.CalibNs)/1e9, baseO.CapacityPPS*float64(baseO.CalibNs)/1e9, false)
	check("overload p99 cycles", float64(ob.P99Cycles), float64(baseO.P99Cycles), true)
	fmt.Printf("  %-28s ceiling %17.2f  current %12.4f\n", "overload shed fraction", 0.5, ob.ShedFraction)
	if ob.ShedFraction > 0.5 {
		failures = append(failures, "overload shed fraction above 0.5")
	}

	if len(failures) > 0 {
		fail(fmt.Errorf("bench gate: regression in %v", failures))
	}
	fmt.Println("knitbench gate: PASS")
}
