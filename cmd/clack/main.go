// Command clack builds and runs the Clack modular router (the paper's
// §5.2 system). It accepts a Click-syntax configuration file — or uses
// the standard 24-component IP router — compiles it to Knit units, runs
// a synthetic packet stream through the simulated machine, and reports
// per-packet cycles and device statistics.
//
// Usage:
//
//	clack [-config file] [-variant modular|hand|flattened|both] [-packets N]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"knit/internal/clack"
	"knit/internal/knit/build"
	"knit/internal/knit/link"
	"knit/internal/knit/supervise"
	"knit/internal/machine"
)

func main() {
	var (
		configPath = flag.String("config", "", "Click-syntax configuration file (default: the standard IP router)")
		variant    = flag.String("variant", "modular", "modular | hand | flattened | both")
		packets    = flag.Int("packets", 1000, "number of packets to route")
		dumpUnits  = flag.Bool("dump-units", false, "print the generated Knit units and exit")
		supFlag    = flag.Bool("supervise", false, "serve the router under the self-healing supervisor")
		faultEvery = flag.Int("fault-every", 0, "with -supervise, kill a classifier element every N packets")
		soak       = flag.Duration("soak", 0, "with -supervise, repeat serving runs for this long and check for goroutine leaks")
		metrics    = flag.Bool("metrics", false, "with -supervise, print the per-instance observability report (each soak run dumps periodically)")
		shards     = flag.Int("shards", 0, "serve through a fleet of N shards behind the flow-hash balancer (0 = single machine)")
		upgrade    = flag.Bool("upgrade", false, "with -shards, live-upgrade the classifiers mid-stream via canary rollout")
		overloadF  = flag.Bool("overload", false, "with -shards, run the overload soak: open-loop traffic at -multiple x measured capacity with admission control, breakers, re-steering, and redelivery")
		multiple   = flag.Float64("multiple", 3, "with -overload, offered load as a multiple of measured capacity")
		killEvery  = flag.Int("kill-every", 50, "with -overload, kill the serving shard every N processed packets (0 = none)")
		canaryN    = flag.Int("canary", 1, "with -upgrade, number of canary shards")
		badCanary  = flag.Bool("bad-canary", false, "with -upgrade, trial the injected-regression classifier; the run must end in a verified rollback")
		backendF   = flag.String("backend", "", "execution backend: interp (reference, default) or compiled (closure-compiled; cycle columns exclude i-fetch stalls)")
	)
	flag.Parse()

	backend, err := machine.ParseBackend(*backendF)
	if err != nil {
		fail(err)
	}

	if *shards > 0 {
		if *upgrade {
			runFleetUpgrade(*shards, *packets, *canaryN, *badCanary, *metrics, backend)
			return
		}
		if *overloadF {
			runOverload(*shards, *packets, *multiple, *killEvery, backend)
			return
		}
		runFleet(*shards, *packets, *faultEvery, *metrics, backend)
		return
	}

	if *supFlag {
		runSupervised(*packets, *faultEvery, *soak, *metrics, backend)
		return
	}

	if *configPath != "" {
		runCustom(*configPath, *packets, *dumpUnits, backend)
		return
	}

	var v clack.Variant
	switch *variant {
	case "modular":
	case "hand":
		v = clack.Variant{HandOptimized: true}
	case "flattened":
		v = clack.Variant{Flattened: true}
	case "both":
		v = clack.Variant{HandOptimized: true, Flattened: true}
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}
	res, err := clack.BuildRouter(v)
	if err != nil {
		fail(err)
	}
	res.Backend = backend
	meas, err := clack.RunRouter(res, clack.DefaultTraffic(*packets))
	if err != nil {
		fail(err)
	}
	meas.Variant = v
	report(meas)
}

// runSupervised is the degraded-mode soak: the modular router serves
// synthetic traffic under the supervisor while fault injection kills a
// classifier element every N packets. Each serving run must sustain
// >= 90% goodput and converge (every instance healthy or
// degraded-to-fallback); a soak repeats runs for the given duration and
// additionally checks that supervision leaks no goroutines.
func runSupervised(packets, faultEvery int, soak time.Duration, metrics bool, backend machine.Backend) {
	res, err := clack.BuildRouter(clack.Variant{})
	if err != nil {
		fail(err)
	}
	res.Backend = backend
	baseline := runtime.NumGoroutine()
	spec := clack.DefaultTraffic(packets)
	pol := supervise.Default()
	runs, totalFaults := 0, 0
	deadline := time.Now().Add(soak)
	var lastDump time.Time
	for {
		rep, err := clack.ServeSupervised(res, spec, pol, supervise.Wall(), faultEvery)
		if err != nil {
			fail(err)
		}
		runs++
		totalFaults += rep.Faults
		if rep.Goodput < 0.90 {
			fail(fmt.Errorf("run %d: goodput %.4f below 0.90", runs, rep.Goodput))
		}
		if !rep.Converged {
			fail(fmt.Errorf("run %d: router did not converge", runs))
		}
		for _, st := range rep.Statuses {
			if st.State != supervise.Healthy && st.State != supervise.Degraded {
				fail(fmt.Errorf("run %d: %s ended %s", runs, st.Path, st.State))
			}
		}
		if runs == 1 {
			fmt.Printf("clack supervised: %d packets, fault every %d, goodput %.4f, %d faults handled\n",
				rep.Stats.Rx[0]+rep.Stats.Rx[1], faultEvery, rep.Goodput, rep.Faults)
			for _, st := range rep.Statuses {
				if st.Failures > 0 {
					fmt.Printf("  %-40s %-20s restarts %d, swaps %d, via %s\n",
						st.Path, st.State, st.Restarts, st.Swaps, st.ActiveModule)
				}
			}
		}
		// With -metrics, dump the per-instance ledger after the first run
		// and then at most every 2s of a soak, so a long soak narrates its
		// component behavior without flooding the terminal.
		if metrics && rep.Metrics != nil && (runs == 1 || time.Since(lastDump) >= 2*time.Second) {
			lastDump = time.Now()
			fmt.Printf("clack metrics (run %d):\n", runs)
			rep.Metrics.Format(os.Stdout)
		}
		if !time.Now().Before(deadline) {
			break
		}
	}
	runtime.GC()
	if g := runtime.NumGoroutine(); g > baseline {
		fail(fmt.Errorf("goroutine leak: %d before soak, %d after %d runs", baseline, g, runs))
	}
	if soak > 0 {
		fmt.Printf("clack soak: %d runs in %v, %d faults handled, goroutines stable at %d\n",
			runs, soak, totalFaults, runtime.NumGoroutine())
	}
}

// runFleet serves the standard router through N shards sharing one
// image: flow-hashed placement, per-shard supervisors, merged metrics.
// With -fault-every, shard 0's classifier is killed every N packets and
// the report shows the blast radius staying inside that shard.
func runFleet(shards, packets, faultEvery int, metrics bool, backend machine.Backend) {
	res, err := clack.BuildRouter(clack.Variant{})
	if err != nil {
		fail(err)
	}
	res.Backend = backend
	clk := func(int) supervise.Clock { return supervise.Wall() }
	rep, err := clack.ServeFleet(res, clack.DefaultFlowTraffic(packets), shards,
		supervise.Default(), clk, faultEvery)
	if err != nil {
		fail(err)
	}
	fmt.Printf("clack fleet: %d shards, %d packets, goodput %.4f, %d order violations\n",
		rep.Shards, rep.Rx, rep.Goodput, rep.OrderViolations)
	for id, st := range rep.PerShard {
		fmt.Printf("  shard %d: rx %d, tx %d, dropped %d, faults %d, restarts %d, swaps %d, respawns %d\n",
			id, st.Rx, st.Tx, st.Dropped, st.Faults, st.Restarts, st.Swaps, st.Respawns)
	}
	if !rep.Converged {
		fail(fmt.Errorf("fleet did not converge"))
	}
	if metrics && rep.Metrics != nil {
		fmt.Println("clack fleet metrics (all shards merged):")
		rep.Metrics.Format(os.Stdout)
	}
}

// runOverload is the overload-control drill: measure the fleet's
// closed-loop capacity, then offer a multiple of it open-loop while a
// shard is killed on schedule. The overload layer must shed honestly
// (conservation balances exactly), finish everything it admitted
// (accepted goodput >= 0.99), recover every killed batch via
// redelivery (0 drops), and hold per-flow order through every re-steer
// (the fleet-global oracle sees 0 inversions). Each bound is the exit
// status for the CI soak leg; supervision must also leak no goroutines.
func runOverload(shards, packets int, multiple float64, killEvery int, backend machine.Backend) {
	res, err := clack.BuildRouter(clack.Variant{})
	if err != nil {
		fail(err)
	}
	res.Backend = backend
	baseline := runtime.NumGoroutine()
	rep, err := clack.ServeOverload(res, clack.OverloadSpec{
		Packets:   packets,
		Flows:     64,
		Shards:    shards,
		Multiple:  multiple,
		KillEvery: killEvery,
		Redeliver: 3,
		Seed:      1,
	})
	if err != nil {
		fail(err)
	}
	fmt.Printf("clack overload: %d shards, %d offered at %.1fx capacity (%.0f -> %.0f pps), kill every %d\n",
		rep.Shards, rep.Submitted, multiple, rep.CapacityPPS, rep.OfferedPPS, killEvery)
	fmt.Printf("  admitted %d, served %d, dropped %d, redelivered %d, shed [high %d, normal %d, low %d]\n",
		rep.Admitted, rep.Served, rep.Dropped, rep.Redelivered,
		rep.Shed[0], rep.Shed[1], rep.Shed[2])
	fmt.Printf("  accepted goodput %.4f, shed fraction %.4f, p99 %d cycles\n",
		rep.AcceptedGoodput, rep.ShedFraction, rep.P99Cycles)
	fmt.Printf("  respawns %d, trips %d, resteers %d, returns %d, order violations %d\n",
		rep.Respawns, rep.Stats.Trips, rep.Stats.Resteers, rep.Stats.Returns, rep.OrderViolations)
	if !rep.ConservationOK {
		fail(fmt.Errorf("conservation broken: submitted %d != served %d + dropped %d + shed %d",
			rep.Submitted, rep.Served, rep.Dropped, rep.ShedTotal))
	}
	if rep.AcceptedGoodput < 0.99 {
		fail(fmt.Errorf("accepted goodput %.4f, want >= 0.99", rep.AcceptedGoodput))
	}
	if rep.OrderViolations != 0 {
		fail(fmt.Errorf("%d per-flow order violations under overload", rep.OrderViolations))
	}
	if killEvery > 0 && rep.Dropped != 0 {
		fail(fmt.Errorf("%d batches dropped; transient kills with redelivery must recover all", rep.Dropped))
	}
	if killEvery > 0 && rep.Respawns == 0 {
		fail(fmt.Errorf("soak too tame: no respawns with kill-every %d", killEvery))
	}
	runtime.GC()
	if g := runtime.NumGoroutine(); g > baseline {
		fail(fmt.Errorf("goroutine leak: %d before overload run, %d after", baseline, g))
	}
}

// runFleetUpgrade is the live-reconfiguration demo: the fleet serves
// the standard router, then mid-stream the classifiers are upgraded via
// a canary rollout gated on the observe SLOs. A good upgrade must
// promote with zero goodput loss and zero order violations; a bad one
// (-bad-canary) must be caught by the SLO window and rolled back
// snapshot-identically — each outcome is the exit-status gate for its
// CI leg.
func runFleetUpgrade(shards, packets, canaries int, bad, metrics bool, backend machine.Backend) {
	if shards < 2 {
		fail(fmt.Errorf("-upgrade needs at least 2 shards (one canary, one stable), got %d", shards))
	}
	res, err := clack.BuildRouter(clack.Variant{})
	if err != nil {
		fail(err)
	}
	res.Backend = backend
	clk := func(int) supervise.Clock { return supervise.Wall() }
	rep, err := clack.ServeFleetUpgrade(res, clack.DefaultFlowTraffic(packets), shards,
		canaries, bad, supervise.Default(), clk)
	if err != nil {
		fail(err)
	}
	outcome := "promoted"
	if rep.RolledBack {
		outcome = "rolled back"
		if rep.RollbackVerified {
			outcome += " (snapshot-verified)"
		}
	}
	fmt.Printf("clack upgrade: %d shards, canaries %v, plan [%s], %s after %d packets (%v, %d window ticks)\n",
		rep.Shards, rep.Canaries, rep.Plan, outcome, rep.DecisionAfter, rep.DecisionLatency.Round(time.Microsecond), rep.ObserveRounds)
	fmt.Printf("  goodput %.4f, %d order violations\n", rep.Goodput, rep.OrderViolations)
	for id, st := range rep.PerShard {
		fmt.Printf("  shard %d: rx %d, tx %d, dropped %d, faults %d, restarts %d, respawns %d\n",
			id, st.Rx, st.Tx, st.Dropped, st.Faults, st.Restarts, st.Respawns)
	}
	if metrics && rep.Metrics != nil {
		fmt.Println("clack upgrade metrics (all shards merged):")
		rep.Metrics.Format(os.Stdout)
	}
	if bad {
		if !rep.RolledBack {
			fail(fmt.Errorf("bad canary was not rolled back (promoted=%v)", rep.Promoted))
		}
		if !rep.RollbackVerified {
			fail(fmt.Errorf("rollback left residue on a canary shard"))
		}
		if rep.OrderViolations != 0 {
			fail(fmt.Errorf("%d order violations during bad-canary drill", rep.OrderViolations))
		}
		return
	}
	if !rep.Promoted {
		fail(fmt.Errorf("upgrade did not promote (rolled back=%v)", rep.RolledBack))
	}
	if rep.Goodput < 0.999 {
		fail(fmt.Errorf("goodput %.4f under upgrade, want >= 0.999", rep.Goodput))
	}
	if rep.OrderViolations != 0 {
		fail(fmt.Errorf("%d order violations under upgrade", rep.OrderViolations))
	}
	if !rep.Converged {
		fail(fmt.Errorf("fleet did not converge after promote"))
	}
}

func runCustom(path string, packets int, dumpUnits bool, backend machine.Backend) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	g, err := clack.ParseConfig(string(data))
	if err != nil {
		fail(err)
	}
	units, genSources, top, err := g.CompileToKnit("CustomRouter")
	if err != nil {
		fail(err)
	}
	full := clack.ElementUnits + units
	if dumpUnits {
		fmt.Print(units)
		return
	}
	sources := link.Sources{}
	for k, v := range clack.ElementSources() {
		sources[k] = v
	}
	for k, v := range genSources {
		sources[k] = v
	}
	res, err := build.Build(build.Options{
		Top:       top,
		UnitFiles: map[string]string{"custom.unit": full},
		Sources:   sources,
		Optimize:  true,
		Backend:   backend,
	})
	if err != nil {
		fail(err)
	}
	meas, err := clack.RunRouter(res, clack.DefaultTraffic(packets))
	if err != nil {
		fail(err)
	}
	report(meas)
}

func report(m *clack.Measurement) {
	fmt.Printf("clack %s: %d packets\n", m.Variant, m.Packets)
	fmt.Printf("  %.0f cycles/packet (%.0f i-fetch stall cycles), text %d bytes\n",
		m.CyclesPerPk, m.StallsPerPk, m.TextBytes)
	fmt.Printf("  forwarded %d (dev0 %d, dev1 %d), dropped %d\n",
		m.Forwarded, m.Stats.Tx[0], m.Stats.Tx[1], m.Dropped)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "clack:", err)
	os.Exit(1)
}
