// Command clack builds and runs the Clack modular router (the paper's
// §5.2 system). It accepts a Click-syntax configuration file — or uses
// the standard 24-component IP router — compiles it to Knit units, runs
// a synthetic packet stream through the simulated machine, and reports
// per-packet cycles and device statistics.
//
// Usage:
//
//	clack [-config file] [-variant modular|hand|flattened|both] [-packets N]
package main

import (
	"flag"
	"fmt"
	"os"

	"knit/internal/clack"
	"knit/internal/knit/build"
	"knit/internal/knit/link"
)

func main() {
	var (
		configPath = flag.String("config", "", "Click-syntax configuration file (default: the standard IP router)")
		variant    = flag.String("variant", "modular", "modular | hand | flattened | both")
		packets    = flag.Int("packets", 1000, "number of packets to route")
		dumpUnits  = flag.Bool("dump-units", false, "print the generated Knit units and exit")
	)
	flag.Parse()

	if *configPath != "" {
		runCustom(*configPath, *packets, *dumpUnits)
		return
	}

	var v clack.Variant
	switch *variant {
	case "modular":
	case "hand":
		v = clack.Variant{HandOptimized: true}
	case "flattened":
		v = clack.Variant{Flattened: true}
	case "both":
		v = clack.Variant{HandOptimized: true, Flattened: true}
	default:
		fail(fmt.Errorf("unknown variant %q", *variant))
	}
	meas, err := clack.MeasureVariant(v, clack.DefaultTraffic(*packets))
	if err != nil {
		fail(err)
	}
	report(meas)
}

func runCustom(path string, packets int, dumpUnits bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail(err)
	}
	g, err := clack.ParseConfig(string(data))
	if err != nil {
		fail(err)
	}
	units, genSources, top, err := g.CompileToKnit("CustomRouter")
	if err != nil {
		fail(err)
	}
	full := clack.ElementUnits + units
	if dumpUnits {
		fmt.Print(units)
		return
	}
	sources := link.Sources{}
	for k, v := range clack.ElementSources() {
		sources[k] = v
	}
	for k, v := range genSources {
		sources[k] = v
	}
	res, err := build.Build(build.Options{
		Top:       top,
		UnitFiles: map[string]string{"custom.unit": full},
		Sources:   sources,
		Optimize:  true,
	})
	if err != nil {
		fail(err)
	}
	meas, err := clack.RunRouter(res, clack.DefaultTraffic(packets))
	if err != nil {
		fail(err)
	}
	report(meas)
}

func report(m *clack.Measurement) {
	fmt.Printf("clack %s: %d packets\n", m.Variant, m.Packets)
	fmt.Printf("  %.0f cycles/packet (%.0f i-fetch stall cycles), text %d bytes\n",
		m.CyclesPerPk, m.StallsPerPk, m.TextBytes)
	fmt.Printf("  forwarded %d (dev0 %d, dev1 %d), dropped %d\n",
		m.Forwarded, m.Stats.Tx[0], m.Stats.Tx[1], m.Dropped)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "clack:", err)
	os.Exit(1)
}
