// Command knit is the Knit compiler driver: it reads unit-definition
// files and the cmini sources they reference, links the requested top
// unit, checks constraints, schedules initializers, and either reports
// on the build or executes an exported function on the simulated
// machine.
//
// Usage:
//
//	knit -top Kernel [-run bundle.symbol [-arg N]] [flags] file.unit...
//	knit -assemble -goal spec.goal [-enumerate K] [-emit-dir DIR] (-oskit | file.unit...)
//
// Source files named by units' files{} sections are read from the
// directory given by -src (default: the directory of the first unit
// file).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"knit/internal/asm"
	"knit/internal/knit/assemble"
	"knit/internal/knit/build"
	"knit/internal/knit/link"
	"knit/internal/knit/observe"
	"knit/internal/knit/reconfigure"
	"knit/internal/knit/supervise"
	"knit/internal/machine"
	"knit/internal/oskit"
)

func main() {
	var (
		top       = flag.String("top", "", "top unit to build (required)")
		srcDir    = flag.String("src", "", "directory for C sources (default: unit file directory)")
		run       = flag.String("run", "", "exported function to execute, as bundle.symbol")
		arg       = flag.Int64("arg", 0, "argument passed to the executed function")
		fuel      = flag.Int64("fuel", 0, "instruction budget per machine run; a component exceeding it traps instead of hanging (0 = unlimited)")
		backendF  = flag.String("backend", "", "execution backend for -run: interp (reference, default) or compiled (closure-compiled, faster, no fetch model)")
		check     = flag.Bool("check", true, "run the constraint checker")
		optimize  = flag.Bool("O", false, "enable the optimizer")
		flatten   = flag.Bool("flatten", false, "flatten all units before compiling")
		cacheDir  = flag.String("cache", "", "directory for the content-hash compile cache (empty = no cache)")
		jobs      = flag.Int("j", 0, "parallel compile jobs (0 = one per CPU)")
		upgradeF  = flag.String("upgrade", "", "with -run, after the first call live-reconfigure to this target unit file (diff, rewire, re-run; the upgraded result is checked against a cold build of the target)")
		supFlag   = flag.Bool("supervise", false, "run -run under the self-healing supervisor (restart/fallback/escalate per policy)")
		policy    = flag.String("policy", "", "supervision policy file (default: built-in policy)")
		calls     = flag.Int("calls", 1, "with -supervise, number of supervised calls to drive")
		metrics   = flag.Bool("metrics", false, "with -run, attribute calls/cycles/traps to unit instances and print the per-instance report")
		traceOut  = flag.String("trace", "", "with -run, write a JSON-lines call trace (most recent spans) to this file")
		assembleF = flag.Bool("assemble", false, "goal-directed assembly: search the unit repository for the cheapest wiring satisfying -goal")
		goalF     = flag.String("goal", "", "goal-spec file for -assemble")
		enumFlag  = flag.Int("enumerate", 0, "with -assemble, stream the top-K distinct satisfying assemblies instead of running the best")
		emitDir   = flag.String("emit-dir", "", "with -assemble, write each generated .unit assembly into this directory")
		oskitRepo = flag.Bool("oskit", false, "with -assemble, search the built-in oskit unit repository (no unit files needed)")
		schedule  = flag.Bool("schedule", false, "print the initializer/finalizer schedule")
		showTime  = flag.Bool("time", false, "print the per-phase build-time breakdown")
		dumpFlat  = flag.Bool("dump-flat", false, "print the flattened merged source and exit")
		dumpAsm   = flag.Bool("dump-asm", false, "print the linked program as assembly and exit")
	)
	flag.Parse()
	if *assembleF || *goalF != "" {
		if *goalF == "" || (!*oskitRepo && flag.NArg() == 0) {
			fmt.Fprintln(os.Stderr, "usage: knit -assemble -goal file.goal [-enumerate K] [-emit-dir DIR] (-oskit | file.unit...)")
			os.Exit(2)
		}
		backend, err := machine.ParseBackend(*backendF)
		if err != nil {
			fail(err)
		}
		runAssemble(*goalF, *oskitRepo, *srcDir, *enumFlag, *emitDir, *run, *arg, backend)
		return
	}
	if *top == "" || flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: knit -top Unit [flags] file.unit...")
		flag.Usage()
		os.Exit(2)
	}

	backend, err := machine.ParseBackend(*backendF)
	if err != nil {
		fail(err)
	}

	unitFiles := map[string]string{}
	for _, path := range flag.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fail(err)
		}
		unitFiles[path] = string(data)
	}
	dir := *srcDir
	if dir == "" {
		dir = filepath.Dir(flag.Args()[0])
	}
	sources, err := loadSources(unitFiles, dir)
	if err != nil {
		fail(err)
	}

	var cache *build.Cache
	if *cacheDir != "" {
		cache, err = build.OpenCache(*cacheDir)
		if err != nil {
			fail(err)
		}
	}
	opts := build.Options{
		Top:         *top,
		UnitFiles:   unitFiles,
		Sources:     sources,
		Optimize:    *optimize,
		Flatten:     *flatten,
		Check:       *check,
		Cache:       cache,
		Parallelism: *jobs,
		Backend:     backend,
	}
	res, err := build.Build(opts)
	if err != nil {
		fail(err)
	}

	if *dumpFlat {
		src, err := build.SourceOf(res.Program, nil)
		if err != nil {
			fail(err)
		}
		fmt.Print(src)
		return
	}
	if *dumpAsm {
		fmt.Print(asm.Format(res.Object))
		return
	}
	fmt.Printf("knit: built %s: %d unit instances, %d initializers, text %d bytes\n",
		*top, len(res.Program.Instances), len(res.Schedule.Inits), res.Image.TextSize)
	if res.ConstraintReport != nil && res.ConstraintReport.Vars > 0 {
		fmt.Printf("knit: constraints OK (%d variables, %d relations)\n",
			res.ConstraintReport.Vars, res.ConstraintReport.Relations)
	}
	if *showTime {
		printTimings(os.Stdout, res.Timings)
	}
	if *schedule {
		fmt.Println("init order:")
		for i, name := range res.Schedule.Inits {
			fmt.Printf("  %2d. %s\n", i+1, name)
		}
		if len(res.Schedule.Fins) > 0 {
			fmt.Println("fini order:")
			for i, name := range res.Schedule.Fins {
				fmt.Printf("  %2d. %s\n", i+1, name)
			}
		}
	}
	if *run != "" {
		parts := strings.SplitN(*run, ".", 2)
		if len(parts) != 2 {
			fail(fmt.Errorf("-run wants bundle.symbol, got %q", *run))
		}
		m := res.NewMachine()
		m.Fuel = *fuel
		con := machine.InstallConsole(m)
		ser := machine.InstallSerial(m)
		machine.InstallStopWatch(m)
		var col *observe.Collector
		var tracer *observe.Tracer
		if *metrics || *traceOut != "" {
			col = observe.Attach(m)
			res.SetObserver(m, col)
			if *traceOut != "" {
				tracer = col.Trace(4096)
			}
		}
		if *supFlag {
			runSupervised(res, m, parts[0], parts[1], *arg, *policy, *fuel, *calls, col)
			printStreams(con, ser)
		} else {
			v, err := res.Run(m, parts[0], parts[1], *arg)
			if err != nil {
				fail(err)
			}
			printStreams(con, ser)
			fmt.Printf("%s(%d) = %d   [%d cycles, %d instructions]\n",
				*run, *arg, v, m.Cycles, m.Executed)
			if *upgradeF != "" {
				runUpgrade(res, m, *upgradeF, dir, parts[0], parts[1], *arg, opts)
			}
		}
		if *metrics {
			fmt.Println("knit: per-instance metrics:")
			col.Report().Format(os.Stdout)
		}
		if tracer != nil {
			if err := writeTrace(*traceOut, tracer); err != nil {
				fail(err)
			}
			fmt.Printf("knit: wrote %d trace spans (%d recorded) to %s\n",
				len(tracer.Spans()), tracer.Recorded(), *traceOut)
		}
	}
}

// runAssemble is the goal-directed assembly driver: it parses the goal
// spec, searches the repository (the built-in oskit kit or the unit
// files on the command line), and either runs the cheapest verified
// assembly or enumerates the top-K distinct ones for the harnesses. An
// unsatisfiable goal exits nonzero with the blocking constraint or
// export named.
func runAssemble(goalPath string, useOskit bool, srcDir string, k int,
	emitDir, runSpec string, arg int64, backend machine.Backend) {

	data, err := os.ReadFile(goalPath)
	if err != nil {
		fail(err)
	}
	goal, err := assemble.ParseGoal(goalPath, string(data))
	if err != nil {
		fail(err)
	}

	var repo assemble.Repo
	if useOskit {
		repo = oskit.Repository()
	} else {
		unitFiles := map[string]string{}
		for _, path := range flag.Args() {
			text, err := os.ReadFile(path)
			if err != nil {
				fail(err)
			}
			unitFiles[path] = string(text)
		}
		dir := srcDir
		if dir == "" {
			dir = filepath.Dir(flag.Args()[0])
		}
		sources, err := loadSources(unitFiles, dir)
		if err != nil {
			fail(err)
		}
		repo = assemble.Repo{UnitFiles: unitFiles, Sources: sources}
	}

	opts := assemble.Options{Backend: backend}
	start := time.Now()
	if k > 0 {
		asms, err := assemble.Enumerate(repo, goal, k, opts)
		if err != nil {
			fail(err)
		}
		fmt.Printf("knit: %d satisfying assemblies (%d requested) in %v\n",
			len(asms), k, time.Since(start).Round(time.Millisecond))
		for i, a := range asms {
			fmt.Printf("  #%d %-16s %s\n     units: %s\n",
				i+1, a.Name, a.Cost, strings.Join(a.Units, ", "))
			emitAssembly(emitDir, fmt.Sprintf("%s_%02d.unit", a.Name, i+1), a.Text)
		}
		return
	}

	best, err := assemble.Assemble(repo, goal, opts)
	if err != nil {
		fail(err)
	}
	fmt.Printf("knit: assembled %s in %v: %s\nknit: units: %s\n",
		best.Name, time.Since(start).Round(time.Millisecond),
		best.Cost, strings.Join(best.Units, ", "))
	fmt.Print(best.Text)
	emitAssembly(emitDir, best.Name+".unit", best.Text)
	if runSpec != "" {
		parts := strings.SplitN(runSpec, ".", 2)
		if len(parts) != 2 {
			fail(fmt.Errorf("-run wants bundle.symbol, got %q", runSpec))
		}
		m := best.Result.NewMachine()
		con := machine.InstallConsole(m)
		ser := machine.InstallSerial(m)
		machine.InstallStopWatch(m)
		v, err := best.Result.Run(m, parts[0], parts[1], arg)
		if err != nil {
			fail(err)
		}
		printStreams(con, ser)
		fmt.Printf("%s(%d) = %d   [%d cycles, %d instructions]\n",
			runSpec, arg, v, m.Cycles, m.Executed)
	}
}

// emitAssembly writes one generated .unit file, creating dir on demand.
func emitAssembly(dir, name, text string) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("knit: wrote %s\n", path)
}

// runUpgrade live-reconfigures the machine that just served the first
// call: the target unit file is parsed and linked, diffed against the
// running configuration, and the minimal rewire plan is applied
// transactionally — then the same export runs again on the same
// machine. As a certificate, a cold build of the target must agree with
// the upgraded live machine on the call's value.
func runUpgrade(res *build.Result, m *machine.M, targetPath, srcDir,
	bundle, sym string, arg int64, base build.Options) {

	data, err := os.ReadFile(targetPath)
	if err != nil {
		fail(err)
	}
	unitFiles := map[string]string{targetPath: string(data)}
	sources, err := loadSources(unitFiles, srcDir)
	if err != nil {
		fail(err)
	}
	for name, src := range base.Sources {
		if _, done := sources[name]; !done {
			sources[name] = src
		}
	}
	tgt := reconfigure.Target{
		Top:       base.Top,
		UnitFiles: unitFiles,
		Sources:   sources,
		Check:     base.Check,
	}
	plan, err := reconfigure.Diff(res, tgt)
	if err != nil {
		fail(fmt.Errorf("upgrade: %w", err))
	}
	fmt.Printf("knit: upgrade plan: %s\n", plan.Summary())
	for _, st := range plan.Steps() {
		fmt.Printf("  %-14s %-30s %s\n", st.Op, st.Slot, st.Detail)
	}
	if plan.NoOp() {
		fmt.Println("knit: target is the running configuration; nothing to do")
		return
	}
	if _, err := plan.Apply(m, nil); err != nil {
		fail(fmt.Errorf("upgrade: %w", err))
	}
	v, err := res.Run(m, bundle, sym, arg)
	if err != nil {
		fail(fmt.Errorf("upgrade: re-run: %w", err))
	}
	fmt.Printf("knit: upgraded live: %s.%s(%d) = %d\n", bundle, sym, arg, v)

	opts := base
	opts.UnitFiles = unitFiles
	opts.Sources = sources
	cold, err := build.Build(opts)
	if err != nil {
		fail(fmt.Errorf("upgrade: cold build of target: %w", err))
	}
	cv, err := cold.Run(cold.NewMachine(), bundle, sym, arg)
	if err != nil {
		fail(fmt.Errorf("upgrade: cold run of target: %w", err))
	}
	if cv != v {
		fail(fmt.Errorf("upgrade: live machine disagrees with cold build: %d vs %d", v, cv))
	}
	fmt.Printf("knit: upgrade verified against cold build (both return %d)\n", v)
}

// writeTrace dumps the tracer's retained spans as JSON lines.
func writeTrace(path string, tr *observe.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runSupervised drives the requested export through the self-healing
// supervisor: initializers run transactionally, each call gets the
// watchdog fuel budget, and every fault is answered per policy —
// backoff-and-restart, fallback interposition, scope escalation. The
// final report enumerates each unit instance's supervision state.
func runSupervised(res *build.Result, m *machine.M, bundle, sym string,
	arg int64, policyPath string, fuel int64, calls int, col *observe.Collector) {
	pol := supervise.Default()
	if policyPath != "" {
		data, err := os.ReadFile(policyPath)
		if err != nil {
			fail(err)
		}
		pol, err = supervise.Parse(string(data))
		if err != nil {
			fail(err)
		}
	}
	if pol.WatchdogFuel == 0 {
		pol.WatchdogFuel = fuel
	}
	if err := res.RunInit(m); err != nil {
		fail(err)
	}
	sup := supervise.New(res, m, pol, supervise.Wall())
	if col != nil {
		sup.Observe(col)
	}
	faults := 0
	var last int64
	for i := 0; i < calls; i++ {
		v, err := sup.Call(bundle, sym, arg)
		if err != nil {
			faults++
			fmt.Printf("knit: call %d faulted: %v\n", i+1, err)
			continue
		}
		last = v
	}
	fmt.Printf("knit: supervised %d calls of %s.%s, %d faulted; last value %d\n",
		calls, bundle, sym, faults, last)
	for _, ev := range sup.Events() {
		fmt.Printf("  event %-10s %-30s %s\n", ev.Action, ev.Instance, ev.Detail)
	}
	fmt.Println("knit: supervision report:")
	for _, st := range sup.Report() {
		line := fmt.Sprintf("  %-40s %-20s failures %d, restarts %d, swaps %d",
			st.Path, st.State, st.Failures, st.Restarts, st.Swaps)
		if st.ActiveModule != "" {
			line += ", serving via " + st.ActiveModule
		}
		fmt.Println(line)
	}
	if err := res.RunFini(m); err != nil {
		fmt.Printf("knit: finalization: %v\n", err)
	}
}

func printStreams(con, ser fmt.Stringer) {
	if out := con.String(); out != "" {
		fmt.Printf("console | %s\n", strings.ReplaceAll(out, "\n", "\nconsole | "))
	}
	if out := ser.String(); out != "" {
		fmt.Printf("serial  | %s\n", strings.ReplaceAll(out, "\n", "\nserial  | "))
	}
}

// printTimings renders the per-phase build-time breakdown (§6), one
// phase per line with its share of the total.
func printTimings(w io.Writer, t build.Timings) {
	total := t.Total()
	fmt.Fprintf(w, "build time %v (knit-proper %v, compiler+loader %v):\n",
		total.Round(time.Microsecond), t.KnitProper().Round(time.Microsecond),
		t.CompilerAndLoader().Round(time.Microsecond))
	for _, p := range t.Phases() {
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(p.D) / float64(total)
		}
		fmt.Fprintf(w, "  %-9s %10v  %5.1f%%\n", p.Name, p.D.Round(time.Microsecond), pct)
	}
	if t.CompileJobs > 0 {
		fmt.Fprintf(w, "  compile cache: %d of %d translation units served from cache\n",
			t.CacheHits, t.CompileJobs)
	}
}

// loadSources reads every file mentioned in any unit's files{} section.
// It scans the unit sources textually for quoted names and loads those
// that exist under dir; the builder reports precisely which file is
// missing if one is needed but absent.
func loadSources(unitFiles map[string]string, dir string) (link.Sources, error) {
	sources := link.Sources{}
	for _, text := range unitFiles {
		for _, name := range quotedStrings(text) {
			if _, done := sources[name]; done {
				continue
			}
			data, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				continue // the builder errors if the unit actually needs it
			}
			sources[name] = string(data)
		}
	}
	return sources, nil
}

func quotedStrings(s string) []string {
	var out []string
	for {
		i := strings.IndexByte(s, '"')
		if i < 0 {
			return out
		}
		j := strings.IndexByte(s[i+1:], '"')
		if j < 0 {
			return out
		}
		out = append(out, s[i+1:i+1+j])
		s = s[i+j+2:]
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "knit:", err)
	os.Exit(1)
}
