package main

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"knit/internal/knit/assemble"
	"knit/internal/knit/build"
	"knit/internal/machine"
	"knit/internal/oskit"
)

func TestQuotedStrings(t *testing.T) {
	got := quotedStrings(`files { "a.c", "b.c" }; flags F = { "-O" }`)
	want := []string{"a.c", "b.c", "-O"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("quotedStrings = %v, want %v", got, want)
	}
	if quotedStrings("no strings here") != nil {
		t.Error("expected nil for no strings")
	}
	if quotedStrings(`unterminated "abc`) != nil {
		t.Error("unterminated quote should yield nothing")
	}
}

// TestCLIEndToEnd drives the same path the knit command does, against
// the on-disk testdata: read unit file, load referenced sources, build,
// run.
func TestCLIEndToEnd(t *testing.T) {
	dir := filepath.Join("testdata", "webserver")
	unitPath := filepath.Join(dir, "web.unit")
	data, err := os.ReadFile(unitPath)
	if err != nil {
		t.Fatal(err)
	}
	unitFiles := map[string]string{unitPath: string(data)}
	sources, err := loadSources(unitFiles, dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"web.c", "log.c", "driver.c", "stdio.c",
		"serve_file.c", "serve_cgi.c"} {
		if _, ok := sources[want]; !ok {
			t.Errorf("loadSources missing %q", want)
		}
	}
	res, err := build.Build(build.Options{
		Top:       "LogServe",
		UnitFiles: unitFiles,
		Sources:   sources,
		Check:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.NewMachine()
	con := machine.InstallConsole(m)
	v, err := res.Run(m, "main", "run", 0)
	if err != nil {
		t.Fatal(err)
	}
	if v != 200 {
		t.Errorf("run(0) = %d, want 200", v)
	}
	out := con.String()
	if !strings.Contains(out, "F") || !strings.Contains(out, "/index.html") ||
		!strings.HasSuffix(out, "<eof>") {
		t.Errorf("console = %q", out)
	}

	// The -time breakdown renders every phase with its share.
	var b strings.Builder
	printTimings(&b, res.Timings)
	rendered := b.String()
	for _, phase := range []string{"parse", "elaborate", "check", "schedule",
		"flatten", "compile", "link", "load", "knit-proper", "compile cache"} {
		if !strings.Contains(rendered, phase) {
			t.Errorf("printTimings output missing %q:\n%s", phase, rendered)
		}
	}
}

// TestCLICacheAndJobs drives the -cache / -j path: a disk cache in a
// temp directory, a cold build, then a warm build from a fresh Cache
// over the same directory, all at -j 8 — the byte-identical object is
// the CLI-level version of the differential equivalence suite.
func TestCLICacheAndJobs(t *testing.T) {
	dir := filepath.Join("testdata", "webserver")
	unitPath := filepath.Join(dir, "web.unit")
	data, err := os.ReadFile(unitPath)
	if err != nil {
		t.Fatal(err)
	}
	unitFiles := map[string]string{unitPath: string(data)}
	sources, err := loadSources(unitFiles, dir)
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	buildWith := func(jobs int) *build.Result {
		t.Helper()
		cache, err := build.OpenCache(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
		res, err := build.Build(build.Options{
			Top:         "LogServe",
			UnitFiles:   unitFiles,
			Sources:     sources,
			Check:       true,
			Cache:       cache,
			Parallelism: jobs,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold := buildWith(8)
	if cold.Timings.CacheHits != 0 {
		t.Errorf("cold CLI build reported %d hits", cold.Timings.CacheHits)
	}
	warm := buildWith(8)
	if warm.Timings.CacheHits != warm.Timings.CompileJobs {
		t.Errorf("warm CLI build hit %d of %d jobs, want all (disk cache)",
			warm.Timings.CacheHits, warm.Timings.CompileJobs)
	}
	if !reflect.DeepEqual(warm.Image.FuncAddr, cold.Image.FuncAddr) ||
		warm.Image.TextSize != cold.Image.TextSize {
		t.Error("warm image layout differs from cold")
	}
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Error("-cache directory is empty after a build")
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".knitobj") {
			t.Errorf("unexpected cache entry %q", e.Name())
		}
	}
}

// TestCLIFuelBudget is the -fuel flag's path: a machine with a small
// instruction budget must stop the webserver run with a budget trap
// attributed to a unit instance, instead of running to completion.
func TestCLIFuelBudget(t *testing.T) {
	dir := filepath.Join("testdata", "webserver")
	unitPath := filepath.Join(dir, "web.unit")
	data, err := os.ReadFile(unitPath)
	if err != nil {
		t.Fatal(err)
	}
	unitFiles := map[string]string{unitPath: string(data)}
	sources, err := loadSources(unitFiles, dir)
	if err != nil {
		t.Fatal(err)
	}
	res, err := build.Build(build.Options{
		Top:       "LogServe",
		UnitFiles: unitFiles,
		Sources:   sources,
		Check:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.NewMachine()
	m.Fuel = 40 // far less than the webserver run needs
	machine.InstallConsole(m)
	_, err = res.Run(m, "main", "run", 0)
	if err == nil {
		t.Fatal("run completed inside a 40-instruction fuel budget")
	}
	var trap *machine.Trap
	if !errors.As(err, &trap) {
		t.Fatalf("err = %T, want a machine trap: %v", err, err)
	}
	if trap.Kind != machine.TrapBudgetExhausted {
		t.Errorf("trap kind = %v, want TrapBudgetExhausted", trap.Kind)
	}
	if !strings.Contains(err.Error(), "fuel budget") || !strings.Contains(err.Error(), "unit ") {
		t.Errorf("error %q lacks fuel/unit attribution", err)
	}
	// With the budget lifted, the same program runs to completion.
	m2 := res.NewMachine()
	machine.InstallConsole(m2)
	if v, err := res.Run(m2, "main", "run", 0); err != nil || v != 200 {
		t.Errorf("unbudgeted run = %d, %v; want 200", v, err)
	}
}

// TestAssembleCLIEndToEnd drives the -assemble path the knit command
// takes against the committed goal specs: parse the goal, search the
// built-in oskit repository, emit the winning .unit to a directory, and
// run the assembled kernel.
func TestAssembleCLIEndToEnd(t *testing.T) {
	goalPath := filepath.Join("..", "..", "examples", "assemble", "src", "hello.goal")
	data, err := os.ReadFile(goalPath)
	if err != nil {
		t.Fatal(err)
	}
	goal, err := assemble.ParseGoal(goalPath, string(data))
	if err != nil {
		t.Fatal(err)
	}
	best, err := assemble.Assemble(oskit.Repository(), goal, assemble.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	emitAssembly(dir, best.Name+".unit", best.Text)
	emitted, err := os.ReadFile(filepath.Join(dir, best.Name+".unit"))
	if err != nil {
		t.Fatal(err)
	}
	if string(emitted) != best.Text {
		t.Fatal("emitted file does not match the assembly text")
	}
	m := best.Result.NewMachine()
	machine.InstallConsole(m)
	ser := machine.InstallSerial(m)
	machine.InstallStopWatch(m)
	v, err := best.Result.Run(m, "main", "kmain", 5)
	if err != nil {
		t.Fatal(err)
	}
	if v != 10 {
		t.Errorf("assembled HelloMain kmain(5) = %d, want 10", v)
	}
	if !strings.Contains(ser.String(), "hello") {
		t.Errorf("serial output %q lacks greeting (goal requires SerialDev)", ser.String())
	}
}

// TestAssembleCLIUnsatExplains mirrors `knit -assemble` on the
// committed unsatisfiable goal: the driver must surface the blocking
// constraint, not a wiring.
func TestAssembleCLIUnsatExplains(t *testing.T) {
	goalPath := filepath.Join("..", "..", "examples", "assemble", "src", "badirq.goal")
	data, err := os.ReadFile(goalPath)
	if err != nil {
		t.Fatal(err)
	}
	goal, err := assemble.ParseGoal(goalPath, string(data))
	if err != nil {
		t.Fatal(err)
	}
	_, err = assemble.Assemble(oskit.Repository(), goal, assemble.Options{})
	var unsat *assemble.UnsatError
	if !errors.As(err, &unsat) {
		t.Fatalf("want UnsatError, got %v", err)
	}
	if !strings.Contains(unsat.Error(), "context") {
		t.Errorf("explanation %q does not name the context constraint", unsat.Error())
	}
}
