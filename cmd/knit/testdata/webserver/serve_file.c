extern int __console_out(int c);
int serve_file(int s, char *path) {
    __console_out('F');
    return 200;
}
