int safe_get(int x) { return -1; }
