static int calls;

void flaky_init(void) { calls = 0; }

int flaky_get(int x) {
    calls = calls + 1;
    if (calls % 3 == 0) {
        int *p = 0;
        return *p;
    }
    return x + calls;
}
