// Webserver: a larger composition exercise on the quickstart's server —
// interposition stacked twice (two instances of the same Log unit, each
// with private state), and the effect of Knit flattening on the same
// configuration (identical behaviour, fewer cycles).
//
// The unit definitions live in src/ws.unit and the sources in the
// sibling .c files, shared with the differential build tests.
package main

import (
	"embed"
	"fmt"
	"log"
	"path"
	"strings"

	"knit/internal/knit/build"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

//go:embed src/ws.unit
var units string

//go:embed src/*.c
var srcFS embed.FS

func buildIt(flatten bool) (*build.Result, int64, string) {
	res, err := build.Build(build.Options{
		Top:       "DoubleTrace",
		UnitFiles: map[string]string{"ws.unit": units},
		Sources:   embeddedSources(),
		Optimize:  true,
		Flatten:   flatten,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.NewMachine()
	con := machine.InstallConsole(m)
	if _, err := res.Run(m, "m", "run", 3); err != nil {
		log.Fatal(err)
	}
	return res, m.Cycles, con.String()
}

func main() {
	plain, cycles, out := buildIt(false)
	fmt.Printf("DoubleTrace: %d instances (the Trace unit is instantiated twice)\n",
		len(plain.Program.Instances))
	fmt.Printf("console: %q\n", out)
	fmt.Println("  (each wrapper counts its own hits: both print 1..3 independently)")

	_, flatCycles, flatOut := buildIt(true)
	if flatOut != out {
		log.Fatalf("flattening changed behaviour: %q vs %q", flatOut, out)
	}
	fmt.Printf("separate compilation: %6d cycles\n", cycles)
	fmt.Printf("flattened:            %6d cycles (%.1f%% fewer, same output)\n",
		flatCycles, 100*float64(cycles-flatCycles)/float64(cycles))

	// Show a fragment of the flattened source: both Trace instances are
	// present under distinct names.
	src, err := build.SourceOf(plain.Program, nil)
	if err != nil {
		log.Fatal(err)
	}
	n := strings.Count(src, "int serve_traced__k")
	fmt.Printf("flattened source defines %d distinct serve_traced copies\n", n)
}

// embeddedSources exposes the embedded .c files as the build's virtual
// filesystem, keyed by base name as the unit file references them.
func embeddedSources() link.Sources {
	sources := link.Sources{}
	entries, err := srcFS.ReadDir("src")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		data, err := srcFS.ReadFile(path.Join("src", e.Name()))
		if err != nil {
			log.Fatal(err)
		}
		sources[e.Name()] = string(data)
	}
	return sources
}
