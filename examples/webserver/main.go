// Webserver: a larger composition exercise on the quickstart's server —
// interposition stacked twice (two instances of the same Log unit, each
// with private state), and the effect of Knit flattening on the same
// configuration (identical behaviour, fewer cycles).
package main

import (
	"fmt"
	"log"
	"strings"

	"knit/internal/knit/build"
	"knit/internal/machine"
)

const units = `
bundletype Serve = { serve_web }
bundletype Main  = { run }

unit Server = {
  exports [ s : Serve ];
  files { "server.c" };
}

// A generic wrapper: counts and tags every request through it. Linked
// twice below — each instance keeps its own counter.
unit Trace = {
  imports [ inner : Serve ];
  exports [ outer : Serve ];
  files { "trace.c" };
  rename {
    inner.serve_web to serve_inner;
    outer.serve_web to serve_traced;
  };
}

unit Client = {
  imports [ s : Serve ];
  exports [ m : Main ];
  depends { m needs s; };
  files { "client.c" };
}

unit DoubleTrace = {
  exports [ m : Main ];
  link {
    [s]  <- Server <- [];
    [t1] <- Trace <- [s];
    [t2] <- Trace <- [t1];
    [m]  <- Client <- [t2];
  };
}
`

var sources = map[string]string{
	"server.c": `
extern int __console_out(int c);
int serve_web(int s, char *path) {
    __console_out('S');
    return 200;
}
`,
	"trace.c": `
extern int __console_out(int c);
int serve_inner(int s, char *path);
static int hits = 0;
int serve_traced(int s, char *path) {
    hits++;
    __console_out('0' + hits);
    int r = serve_inner(s, path);
    __console_out('t');
    return r;
}
`,
	"client.c": `
int serve_web(int s, char *path);
int run(int n) {
    int last = 0;
    for (int i = 0; i < n; i++) {
        last = serve_web(1, "/page");
    }
    return last;
}
`,
}

func buildIt(flatten bool) (*build.Result, int64, string) {
	res, err := build.Build(build.Options{
		Top:       "DoubleTrace",
		UnitFiles: map[string]string{"ws.unit": units},
		Sources:   sources,
		Optimize:  true,
		Flatten:   flatten,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.NewMachine()
	con := machine.InstallConsole(m)
	if _, err := res.Run(m, "m", "run", 3); err != nil {
		log.Fatal(err)
	}
	return res, m.Cycles, con.String()
}

func main() {
	plain, cycles, out := buildIt(false)
	fmt.Printf("DoubleTrace: %d instances (the Trace unit is instantiated twice)\n",
		len(plain.Program.Instances))
	fmt.Printf("console: %q\n", out)
	fmt.Println("  (each wrapper counts its own hits: both print 1..3 independently)")

	_, flatCycles, flatOut := buildIt(true)
	if flatOut != out {
		log.Fatalf("flattening changed behaviour: %q vs %q", flatOut, out)
	}
	fmt.Printf("separate compilation: %6d cycles\n", cycles)
	fmt.Printf("flattened:            %6d cycles (%.1f%% fewer, same output)\n",
		flatCycles, 100*float64(cycles-flatCycles)/float64(cycles))

	// Show a fragment of the flattened source: both Trace instances are
	// present under distinct names.
	src, err := build.SourceOf(plain.Program, nil)
	if err != nil {
		log.Fatal(err)
	}
	n := strings.Count(src, "int serve_traced__k")
	fmt.Printf("flattened source defines %d distinct serve_traced copies\n", n)
}
