extern int __console_out(int c);
int serve_web(int s, char *path) {
    __console_out('S');
    return 200;
}
