int serve_web(int s, char *path);
int run(int n) {
    int last = 0;
    for (int i = 0; i < n; i++) {
        last = serve_web(1, "/page");
    }
    return last;
}
