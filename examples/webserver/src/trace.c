extern int __console_out(int c);
int serve_inner(int s, char *path);
static int hits = 0;
int serve_traced(int s, char *path) {
    hits++;
    __console_out('0' + hits);
    int r = serve_inner(s, path);
    __console_out('t');
    return r;
}
