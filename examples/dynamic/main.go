// Dynamic: Knit's §8 dynamic-linking extension. A kernel with a counter
// service runs; a monitoring module is linked into the live machine,
// wired to the running service, constraint-checked at the dynamic
// boundary, initialized, and invoked — then a second module that
// violates the running configuration's constraints is rejected before
// any of its code loads.
//
// The unit definitions live in src/*.unit and the sources in the
// sibling .c files, shared with the differential build tests.
package main

import (
	"embed"
	"fmt"
	"log"
	"path"

	"knit/internal/knit/build"
	"knit/internal/knit/link"
)

//go:embed src/base.unit
var baseUnits string

//go:embed src/mon.unit
var monitorUnits string

//go:embed src/irq.unit
var irqUnits string

//go:embed src/*.c
var srcFS embed.FS

func main() {
	res, err := build.Build(build.Options{
		Top:       "Base",
		UnitFiles: map[string]string{"base.unit": baseUnits},
		Sources:   embeddedSources(),
		Check:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		log.Fatal(err)
	}
	bump, _ := res.Export("count", "bump")
	for i := 0; i < 5; i++ {
		if _, err := m.Run(bump); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("base kernel running; counter bumped 5 times")

	// Load the monitor into the live machine.
	mon, err := res.LoadDynamic(m, build.DynamicUnit{
		Unit:      "MonitorU",
		UnitFiles: map[string]string{"mon.unit": monitorUnits},
		Sources:   embeddedSources(),
		Wiring:    map[string]string{"count": "count"},
		Check:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("monitor module dynamically linked and initialized")
	for i := 0; i < 3; i++ {
		m.Run(bump)
	}
	sample, _ := mon.ExportSymbol("mon", "sample")
	v, err := m.Run(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitor.sample() = %d bumps since it was loaded\n", v)

	// A module whose constraints conflict with the running configuration
	// is rejected at the dynamic boundary.
	_, err = res.LoadDynamic(m, build.DynamicUnit{
		Unit:      "DynIrq",
		UnitFiles: map[string]string{"irq.unit": irqUnits},
		Sources:   embeddedSources(),
		Wiring:    map[string]string{"lock": "lock"},
		Check:     true,
	})
	if err == nil {
		log.Fatal("expected the interrupt module to be rejected")
	}
	fmt.Printf("interrupt module rejected at the dynamic boundary:\n  %v\n", err)

	// Unload the monitor again: its finalizers run and its code, data,
	// and symbols are reclaimed from the live machine — the kernel keeps
	// running without it.
	if err := mon.Unload(m); err != nil {
		log.Fatal(err)
	}
	if _, err := m.Run(sample); err == nil {
		log.Fatal("monitor export still resolvable after unload")
	}
	if _, err := m.Run(bump); err != nil {
		log.Fatal(err)
	}
	fmt.Println("monitor module unloaded; its exports are gone, the kernel still runs")
}

// embeddedSources exposes the embedded .c files as the build's virtual
// filesystem, keyed by base name as the unit files reference them.
func embeddedSources() link.Sources {
	sources := link.Sources{}
	entries, err := srcFS.ReadDir("src")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		data, err := srcFS.ReadFile(path.Join("src", e.Name()))
		if err != nil {
			log.Fatal(err)
		}
		sources[e.Name()] = string(data)
	}
	return sources
}
