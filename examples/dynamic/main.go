// Dynamic: Knit's §8 dynamic-linking extension. A kernel with a counter
// service runs; a monitoring module is linked into the live machine,
// wired to the running service, constraint-checked at the dynamic
// boundary, initialized, and invoked — then a second module that
// violates the running configuration's constraints is rejected before
// any of its code loads.
package main

import (
	"fmt"
	"log"

	"knit/internal/knit/build"
	"knit/internal/knit/link"
)

const baseUnits = `
property context
type NoContext
type ProcessContext < NoContext

bundletype Count = { bump, current }
bundletype Lock  = { lock_acquire, lock_release }

unit Counter = {
  exports [ count : Count ];
  initializer count_init for count;
  files { "counter.c" };
}
unit BlockingLock = {
  exports [ lock : Lock ];
  files { "lock.c" };
  constraints { context(lock) = ProcessContext; };
}
unit Base = {
  exports [ count : Count, lock : Lock ];
  link {
    [count] <- Counter <- [];
    [lock] <- BlockingLock <- [];
  };
}
`

var baseSources = link.Sources{
	"counter.c": `
static int n;
void count_init(void) { n = 1000; }
int bump(void) { n++; return n; }
int current(void) { return n; }
`,
	"lock.c": `
static int held;
int lock_acquire(void) { held = 1; return 1; }
int lock_release(void) { held = 0; return 1; }
`,
}

const monitorUnits = `
bundletype Monitor = { sample }
unit MonitorU = {
  imports [ count : Count ];
  exports [ mon : Monitor ];
  initializer mon_init for mon;
  depends { mon needs count; mon_init needs count; };
  files { "monitor.c" };
}
`

var monitorSources = link.Sources{
	"monitor.c": `
int current(void);
static int baseline;
void mon_init(void) { baseline = current(); }
int sample(void) { return current() - baseline; }
`,
}

const irqUnits = `
bundletype Irq = { irq_handle }
unit DynIrq = {
  imports [ lock : Lock ];
  exports [ irq : Irq ];
  depends { irq needs lock; };
  files { "irq.c" };
  constraints {
    context(irq) = NoContext;
    context(exports) <= context(imports);
  };
}
`

var irqSources = link.Sources{
	"irq.c": `
int lock_acquire(void);
int lock_release(void);
int irq_handle(int v) { lock_acquire(); lock_release(); return v; }
`,
}

func main() {
	res, err := build.Build(build.Options{
		Top:       "Base",
		UnitFiles: map[string]string{"base.unit": baseUnits},
		Sources:   baseSources,
		Check:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.NewMachine()
	if err := res.RunInit(m); err != nil {
		log.Fatal(err)
	}
	bump, _ := res.Export("count", "bump")
	for i := 0; i < 5; i++ {
		if _, err := m.Run(bump); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("base kernel running; counter bumped 5 times")

	// Load the monitor into the live machine.
	mon, err := res.LoadDynamic(m, build.DynamicUnit{
		Unit:      "MonitorU",
		UnitFiles: map[string]string{"mon.unit": monitorUnits},
		Sources:   monitorSources,
		Wiring:    map[string]string{"count": "count"},
		Check:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("monitor module dynamically linked and initialized")
	for i := 0; i < 3; i++ {
		m.Run(bump)
	}
	sample, _ := mon.ExportSymbol("mon", "sample")
	v, err := m.Run(sample)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("monitor.sample() = %d bumps since it was loaded\n", v)

	// A module whose constraints conflict with the running configuration
	// is rejected at the dynamic boundary.
	_, err = res.LoadDynamic(m, build.DynamicUnit{
		Unit:      "DynIrq",
		UnitFiles: map[string]string{"irq.unit": irqUnits},
		Sources:   irqSources,
		Wiring:    map[string]string{"lock": "lock"},
		Check:     true,
	})
	if err == nil {
		log.Fatal("expected the interrupt module to be rejected")
	}
	fmt.Printf("interrupt module rejected at the dynamic boundary:\n  %v\n", err)
}
