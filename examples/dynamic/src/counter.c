static int n;
void count_init(void) { n = 1000; }
int bump(void) { n++; return n; }
int current(void) { return n; }
