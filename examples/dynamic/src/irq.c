int lock_acquire(void);
int lock_release(void);
int irq_handle(int v) { lock_acquire(); lock_release(); return v; }
