static int held;
int lock_acquire(void) { held = 1; return 1; }
int lock_release(void) { held = 0; return 1; }
