int current(void);
static int baseline;
void mon_init(void) { baseline = current(); }
int sample(void) { return current() - baseline; }
