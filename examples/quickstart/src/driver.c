int serve_web(int s, char *path);
int run(int which) {
    if (which) { return serve_web(1, "/cgi-bin/form"); }
    return serve_web(1, "/index.html");
}
