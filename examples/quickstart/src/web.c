int serve_file(int s, char *path);
int serve_cgi(int s, char *path);
static int strncmp_(char *a, char *b, int n) {
    for (int i = 0; i < n; i++) {
        if (a[i] != b[i]) { return a[i] - b[i]; }
        if (a[i] == 0) { return 0; }
    }
    return 0;
}
int serve_web(int s, char *path) {
    if (!strncmp_(path, "/cgi-bin/", 9)) {
        return serve_cgi(s, path + 9);
    }
    return serve_file(s, path);
}
