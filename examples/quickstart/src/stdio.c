extern int __console_out(int c);
static int ready = 0;
void stdio_init(void) { ready = 1; }
int fopen(char *name, char *mode) { return ready ? 3 : -1; }
int fprintf(int f, char *s) {
    int i = 0;
    while (s[i] != 0) { __console_out(s[i]); i++; }
    return i;
}
