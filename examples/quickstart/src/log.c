int serve_unlogged(int s, char *path);
int fopen(char *name, char *mode);
int fprintf(int f, char *s);
static int log_;
void open_log(void) { log_ = fopen("ServerLog", "a"); }
void close_log(void) { fprintf(log_, " <log closed>"); }
int serve_logged(int s, char *path) {
    int r;
    r = serve_unlogged(s, path);
    fprintf(log_, " log:");
    fprintf(log_, path);
    return r;
}
