extern int __console_out(int c);
int serve_file(int s, char *path) {
    __console_out('[');
    int i = 0;
    while (path[i] != 0) { __console_out(path[i]); i++; }
    __console_out(']');
    return 200;
}
