int serve_cgi(int s, char *path) { return 201; }
