// Quickstart: the paper's running example (Figures 2-6) end to end — a
// Web server unit wired to file/CGI handlers, wrapped by a logging unit,
// all composed in the compound unit LogServe, with Knit scheduling the
// stdio initializer before the log's initializer automatically.
package main

import (
	"fmt"
	"log"

	"knit/internal/knit/build"
	"knit/internal/machine"
)

// The unit definitions, directly following the paper's Figure 5.
const units = `
bundletype Serve = { serve_web }
bundletype Stdio = { fopen, fprintf }
bundletype Main  = { run }

unit ServeFile = {
  exports [ serveFile : Serve ];
  files { "serve_file.c" };
  rename { serveFile.serve_web to serve_file; };
}
unit ServeCGI = {
  exports [ serveCGI : Serve ];
  files { "serve_cgi.c" };
  rename { serveCGI.serve_web to serve_cgi; };
}
unit StdioUnit = {
  exports [ stdio : Stdio ];
  initializer stdio_init for stdio;
  files { "stdio.c" };
}

unit Web = {
  imports [ serveFile : Serve, serveCGI : Serve ];
  exports [ serveWeb : Serve ];
  depends { serveWeb needs (serveFile + serveCGI); };
  files { "web.c" };
  rename {
    serveFile.serve_web to serve_file;
    serveCGI.serve_web to serve_cgi;
  };
}

unit Log = {
  imports [ serveWeb : Serve, stdio : Stdio ];
  exports [ serveLog : Serve ];
  initializer open_log for serveLog;
  finalizer close_log for serveLog;
  depends {
    (open_log + close_log) needs stdio;
    serveLog needs (serveWeb + stdio);
  };
  files { "log.c" };
  rename {
    serveWeb.serve_web to serve_unlogged;
    serveLog.serve_web to serve_logged;
  };
}

unit Driver = {
  imports [ serve : Serve ];
  exports [ main : Main ];
  depends { main needs serve; };
  files { "driver.c" };
}

unit LogServe = {
  exports [ main : Main ];
  link {
    [serveFile] <- ServeFile <- [];
    [serveCGI] <- ServeCGI <- [];
    [stdio] <- StdioUnit <- [];
    [serveWeb] <- Web <- [serveFile, serveCGI];
    [serveLog] <- Log <- [serveWeb, stdio];
    [main] <- Driver <- [serveLog];
  };
}
`

// The component implementations; web.c and log.c follow Figure 6.
var sources = map[string]string{
	"serve_file.c": `
extern int __console_out(int c);
int serve_file(int s, char *path) {
    __console_out('[');
    int i = 0;
    while (path[i] != 0) { __console_out(path[i]); i++; }
    __console_out(']');
    return 200;
}
`,
	"serve_cgi.c": `
int serve_cgi(int s, char *path) { return 201; }
`,
	"stdio.c": `
extern int __console_out(int c);
static int ready = 0;
void stdio_init(void) { ready = 1; }
int fopen(char *name, char *mode) { return ready ? 3 : -1; }
int fprintf(int f, char *s) {
    int i = 0;
    while (s[i] != 0) { __console_out(s[i]); i++; }
    return i;
}
`,
	"web.c": `
int serve_file(int s, char *path);
int serve_cgi(int s, char *path);
static int strncmp_(char *a, char *b, int n) {
    for (int i = 0; i < n; i++) {
        if (a[i] != b[i]) { return a[i] - b[i]; }
        if (a[i] == 0) { return 0; }
    }
    return 0;
}
int serve_web(int s, char *path) {
    if (!strncmp_(path, "/cgi-bin/", 9)) {
        return serve_cgi(s, path + 9);
    }
    return serve_file(s, path);
}
`,
	"log.c": `
int serve_unlogged(int s, char *path);
int fopen(char *name, char *mode);
int fprintf(int f, char *s);
static int log_;
void open_log(void) { log_ = fopen("ServerLog", "a"); }
void close_log(void) { fprintf(log_, " <log closed>"); }
int serve_logged(int s, char *path) {
    int r;
    r = serve_unlogged(s, path);
    fprintf(log_, " log:");
    fprintf(log_, path);
    return r;
}
`,
	"driver.c": `
int serve_web(int s, char *path);
int run(int which) {
    if (which) { return serve_web(1, "/cgi-bin/form"); }
    return serve_web(1, "/index.html");
}
`,
}

func main() {
	res, err := build.Build(build.Options{
		Top:       "LogServe",
		UnitFiles: map[string]string{"web.unit": units},
		Sources:   sources,
		Check:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built LogServe: %d unit instances\n", len(res.Program.Instances))
	fmt.Printf("initialization schedule: %v\n", res.Schedule.Inits)
	fmt.Printf("finalization schedule:   %v\n\n", res.Schedule.Fins)

	m := res.NewMachine()
	con := machine.InstallConsole(m)
	status, err := res.Run(m, "main", "run", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /index.html -> %d\n", status)
	fmt.Printf("console: %q\n", con.String())
}
