// Quickstart: the paper's running example (Figures 2-6) end to end — a
// Web server unit wired to file/CGI handlers, wrapped by a logging unit,
// all composed in the compound unit LogServe, with Knit scheduling the
// stdio initializer before the log's initializer automatically.
//
// The unit definitions live in src/web.unit and the component sources
// in the sibling .c files (directly following the paper's Figures 5
// and 6); they are embedded so the example runs from any directory,
// and the same files are built by the repo-wide differential build
// tests and by cmd/knit:
//
//	knit -top LogServe -run main.run examples/quickstart/src/web.unit
package main

import (
	"embed"
	"fmt"
	"log"
	"path"

	"knit/internal/knit/build"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

//go:embed src/web.unit
var units string

//go:embed src/*.c
var srcFS embed.FS

func main() {
	res, err := build.Build(build.Options{
		Top:       "LogServe",
		UnitFiles: map[string]string{"web.unit": units},
		Sources:   embeddedSources(),
		Check:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("built LogServe: %d unit instances\n", len(res.Program.Instances))
	fmt.Printf("initialization schedule: %v\n", res.Schedule.Inits)
	fmt.Printf("finalization schedule:   %v\n\n", res.Schedule.Fins)

	m := res.NewMachine()
	con := machine.InstallConsole(m)
	status, err := res.Run(m, "main", "run", 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("GET /index.html -> %d\n", status)
	fmt.Printf("console: %q\n", con.String())
}

// embeddedSources exposes the embedded .c files as the build's virtual
// filesystem, keyed by base name as the unit file references them.
func embeddedSources() link.Sources {
	sources := link.Sources{}
	entries, err := srcFS.ReadDir("src")
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		data, err := srcFS.ReadFile(path.Join("src", e.Name()))
		if err != nil {
			log.Fatal(err)
		}
		sources[e.Name()] = string(data)
	}
	return sources
}
