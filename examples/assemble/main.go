// Assemble: goal-directed composition over the oskit repository — the
// inverse of the §4 constraint checker. Each committed goal spec in
// src/ asks for exports, property bounds, and required/forbidden units;
// the assembler searches the repository for satisfying wirings, prunes
// with the poset solver on partial assemblies, ranks survivors by
// measured cost (image text size + init-schedule cycles), and verifies
// the winner through the real build pipeline. The badirq goal is
// deliberately unsatisfiable and demonstrates the minimal explanation.
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"knit/internal/knit/assemble"
	"knit/internal/machine"
	"knit/internal/oskit"
)

func main() {
	repo := oskit.Repository()
	goals, err := filepath.Glob(filepath.Join(srcDir(), "*.goal"))
	if err != nil || len(goals) == 0 {
		log.Fatalf("no goal specs found: %v", err)
	}
	for _, path := range goals {
		data, err := os.ReadFile(path)
		if err != nil {
			log.Fatal(err)
		}
		goal, err := assemble.ParseGoal(filepath.Base(path), string(data))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s ==\n", filepath.Base(path))
		best, err := assemble.Assemble(repo, goal, assemble.Options{})
		var unsat *assemble.UnsatError
		if errors.As(err, &unsat) {
			fmt.Printf("unsatisfiable (as %s should be): %s\n\n", goal.Name, unsat.Reason)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("best of the verified wirings: %s\n  units: %s\n",
			best.Cost, strings.Join(best.Units, ", "))
		if hasMain(best) {
			m := best.Result.NewMachine()
			con := machine.InstallConsole(m)
			ser := machine.InstallSerial(m)
			machine.InstallStopWatch(m)
			v, err := best.Result.Run(m, "main", "kmain", 3)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  kmain(3) = %d, console %q, serial %q\n", v, con.String(), ser.String())
		}
		fmt.Println()
	}
}

func hasMain(a *assemble.Assembly) bool {
	for _, e := range a.Goal.Exports {
		if e.Type == "Main" {
			return true
		}
	}
	return false
}

// srcDir locates the goal specs whether run from the repo root or from
// this example's directory.
func srcDir() string {
	for _, d := range []string{"src", filepath.Join("examples", "assemble", "src")} {
		if fi, err := os.Stat(d); err == nil && fi.IsDir() {
			return d
		}
	}
	return "src"
}
