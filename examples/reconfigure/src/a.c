static int state;
void a_init(void) { state = 10; }
int a_get(void) { return state; }
