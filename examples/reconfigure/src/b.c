int a_get(void);
static int state;
void b_init(void) { state = a_get() + 10; }
int b_get(void) { return state; }
