int b_get(void);
static int state;
void c_init(void) { state = 1; }
int c_get(int n) { return b_get() + state + n; }
