int a_get(void);
static int state;
void b2_init(void) { state = a_get() + 200; }
int b_get(void) { return state + 1; }
