// Router: the paper's §5.2 demonstration. First the introductory Click
// example — "FromDevice(0) -> Counter -> Discard" — written in the Click
// configuration language and compiled to Knit units; then the standard
// 24-component IP router, run in all four Table 1 variants.
package main

import (
	"fmt"
	"log"

	"knit/internal/clack"
	"knit/internal/knit/build"
	"knit/internal/knit/link"
	"knit/internal/machine"
)

func main() {
	countAndDiscard()
	fmt.Println()
	table1()
}

// countAndDiscard builds the paper's first Click example.
func countAndDiscard() {
	cfg := `
src  :: FromDevice(0);
cnt  :: Counter;
sink :: Discard;
src -> cnt -> sink;
`
	g, err := clack.ParseConfig(cfg)
	if err != nil {
		log.Fatal(err)
	}
	units, sources, top, err := g.CompileToKnit("CountRouter")
	if err != nil {
		log.Fatal(err)
	}
	for k, v := range clack.ElementSources() {
		sources[k] = v
	}
	res, err := build.Build(build.Options{
		Top:       top,
		UnitFiles: map[string]string{"count.unit": clack.ElementUnits + units},
		Sources:   link.Sources(sources),
		Optimize:  true,
	})
	if err != nil {
		log.Fatal(err)
	}
	m := res.NewMachine()
	stats := clack.InstallDevices(m, clack.DefaultTraffic(40).Generate())
	machine.InstallStopWatch(m)
	if _, err := res.Run(m, "main", "kmain", 100); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("FromDevice(0) -> Counter -> Discard: received %d packets on dev0, discarded %d\n",
		stats.Rx[0], stats.Dropped)
}

// table1 runs the standard IP router in every Table 1 variant.
func table1() {
	fmt.Println("standard IP router (24 components), 1000 packets:")
	spec := clack.DefaultTraffic(1000)
	for _, v := range []clack.Variant{{}, {HandOptimized: true}, {Flattened: true},
		{HandOptimized: true, Flattened: true}} {
		meas, err := clack.MeasureVariant(v, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s %6.0f cycles/packet, %4.0f stall cycles, forwarded %d, dropped %d\n",
			meas.Variant, meas.CyclesPerPk, meas.StallsPerPk, meas.Forwarded, meas.Dropped)
	}
}
