// Kernelconfig: assembling OSKit-style kernels with Knit — the §5
// experience. It shows printf redirection by wiring (two instances of
// the same printf component bound to different devices), automatic
// initializer scheduling, an allocator swapped by editing one link line,
// and the constraint checker rejecting a blocking lock on the interrupt
// path.
package main

import (
	"fmt"
	"log"

	"knit/internal/knit/build"
	"knit/internal/machine"
	"knit/internal/oskit"
)

func main() {
	hello()
	redirection()
	allocatorSwap()
	constraints()
}

func hello() {
	res, err := oskit.BuildKernel("HelloKernel", build.Options{Check: true})
	if err != nil {
		log.Fatal(err)
	}
	m := res.NewMachine()
	con := machine.InstallConsole(m)
	v, err := res.Run(m, "main", "kmain", 21)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HelloKernel: kmain(21) = %d, console %q\n", v, con.String())
}

func redirection() {
	// RedirectKernel wires one PrintfU instance to the console device and
	// a second instance to the serial port; application and driver output
	// separate without touching any C code.
	res, err := oskit.BuildKernel("RedirectKernel", build.Options{})
	if err != nil {
		log.Fatal(err)
	}
	m := res.NewMachine()
	con := machine.InstallConsole(m)
	ser := machine.InstallSerial(m)
	if _, err := res.Run(m, "main", "kmain", 0); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("RedirectKernel: console=%q serial=%q\n", con.String(), ser.String())
}

func allocatorSwap() {
	for _, top := range []string{"FsKernel", "FsKernelListAlloc"} {
		res, err := oskit.BuildKernel(top, build.Options{})
		if err != nil {
			log.Fatal(err)
		}
		m := res.NewMachine()
		machine.InstallConsole(m)
		machine.InstallStopWatch(m)
		v, err := res.Run(m, "main", "kmain", 25)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: init order %v, kmain(25) = %d\n", top, res.Schedule.Inits, v)
	}
}

func constraints() {
	if _, err := oskit.BuildKernel("SafeIrqKernel", build.Options{Check: true}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("SafeIrqKernel: spinlock under the interrupt handler — constraints PASS")
	_, err := oskit.BuildKernel("BadIrqKernel", build.Options{Check: true})
	if err == nil {
		log.Fatal("BadIrqKernel unexpectedly passed")
	}
	fmt.Printf("BadIrqKernel: blocking lock under the interrupt handler — REJECTED:\n  %v\n", err)
}
