// Generated-assembly differential tests: the goal-directed assembler
// (internal/knit/assemble) is a scenario generator — every distinct
// satisfying wiring it enumerates over the committed goal specs in
// examples/assemble/src must behave like hand-written configurations:
// plain, cold-cached, warm-cached, and parallel builds agree
// (differential_test.go's contract), and the interpreter and compiled
// backends are observationally identical on the full run
// (backend_differential_test.go's contract). Goals authored to be
// unsatisfiable must yield explanations, never wirings.
package knit

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"knit/internal/knit/assemble"
	"knit/internal/knit/build"
	"knit/internal/oskit"
)

// assemblySweepMin is the coverage floor: the committed goal set must
// keep producing at least this many distinct verified assemblies.
const assemblySweepMin = 25

// sweepGoals loads every committed goal spec.
func sweepGoals(t *testing.T) map[string]*assemble.Goal {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join("examples", "assemble", "src", "*.goal"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no committed goal specs: %v", err)
	}
	goals := map[string]*assemble.Goal{}
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		g, err := assemble.ParseGoal(filepath.Base(path), string(data))
		if err != nil {
			t.Fatal(err)
		}
		goals[strings.TrimSuffix(filepath.Base(path), ".goal")] = g
	}
	return goals
}

// enumerateSweep runs the enumerator over every satisfiable committed
// goal and returns the assemblies keyed by "goal/index". Unsatisfiable
// goals (badirq) are asserted to explain themselves and contribute
// nothing.
func enumerateSweep(t *testing.T) map[string]*assemble.Assembly {
	t.Helper()
	repo := oskit.Repository()
	opts := assemble.Options{RankPool: 12, RawBudget: 128}
	out := map[string]*assemble.Assembly{}
	for name, g := range sweepGoals(t) {
		asms, err := assemble.Enumerate(repo, g, 12, opts)
		if err != nil {
			var unsat *assemble.UnsatError
			if !errors.As(err, &unsat) {
				t.Fatalf("%s: %v", name, err)
			}
			if unsat.Reason == "" {
				t.Fatalf("%s: unsatisfiable without an explanation", name)
			}
			continue
		}
		for i, a := range asms {
			out[fmt.Sprintf("%s/%02d", name, i+1)] = a
		}
	}
	return out
}

// TestAssemblySweepCoverage pins the force-multiplier property: the
// committed goal set expands into a generated scenario suite at least
// assemblySweepMin strong.
func TestAssemblySweepCoverage(t *testing.T) {
	asms := enumerateSweep(t)
	perGoal := map[string]int{}
	for key := range asms {
		perGoal[strings.SplitN(key, "/", 2)[0]]++
	}
	t.Logf("sweep: %d assemblies across goals %v", len(asms), perGoal)
	if len(asms) < assemblySweepMin {
		var names []string
		for k := range asms {
			names = append(names, k)
		}
		t.Fatalf("sweep produced %d assemblies, want >= %d: %v",
			len(asms), assemblySweepMin, names)
	}
	texts := map[string]bool{}
	for key, a := range asms {
		sig := a.Name + "\n" + a.Text
		if texts[sig] {
			t.Errorf("%s duplicates another assembly's text", key)
		}
		texts[sig] = true
	}
}

// TestAssemblyDifferential walks every generated assembly through the
// build-mode differential harness (plain ≡ cold ≡ warm ≡ parallel) and
// the backend differential harness (interp ≡ compiled on the full
// init/run/fini trace), exactly like the hand-written fixtures.
func TestAssemblyDifferential(t *testing.T) {
	repo := oskit.Repository()
	for key, a := range enumerateSweep(t) {
		a := a
		files := map[string]string{"__assembly.unit": a.Text}
		for k, v := range repo.UnitFiles {
			files[k] = v
		}
		base := build.Options{
			Top:       a.Name,
			UnitFiles: files,
			Sources:   repo.Sources,
			Check:     true,
		}
		t.Run(key+"/builds", func(t *testing.T) {
			buildVariants(t, base)
		})
		t.Run(key+"/backends", func(t *testing.T) {
			assertBackendAgreement(t, func() (*build.Result, error) {
				return build.Build(base)
			})
		})
	}
}

// TestAssemblySweepUnsatGoalCommitted keeps the deliberately
// unsatisfiable committed goal honest: badirq.goal must stay the
// paper's §4 context violation, reported with the constraint named.
func TestAssemblySweepUnsatGoalCommitted(t *testing.T) {
	goals := sweepGoals(t)
	g, ok := goals["badirq"]
	if !ok {
		t.Fatal("committed goal set lost badirq.goal")
	}
	_, err := assemble.Assemble(oskit.Repository(), g, assemble.Options{})
	var unsat *assemble.UnsatError
	if !errors.As(err, &unsat) {
		t.Fatalf("badirq.goal: want UnsatError, got %v", err)
	}
	if unsat.Violation == nil || unsat.Violation.Var.Prop != "context" {
		t.Fatalf("badirq.goal: explanation does not name the context constraint: %v", unsat)
	}
}
