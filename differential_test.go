// Differential build equivalence tests: the compile cache and the
// parallel compile stage are pure build accelerators, so for every unit
// file shipped in the repo a cold cached build, a warm cached build, and
// a parallel build must produce byte-for-byte the object and image that
// a plain serial build produces. The fixtures are discovered by walking
// examples/ and cmd/knit/testdata/ for *.unit files, so adding an
// example automatically adds it to the suite.
package knit

import (
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"

	"knit/internal/asm"
	"knit/internal/clack"
	"knit/internal/knit/build"
	"knit/internal/knit/lang"
	"knit/internal/knit/link"
	"knit/internal/oskit"
)

// unitFixture is one on-disk .unit file plus the sources in its
// directory and the root units it can build standalone.
type unitFixture struct {
	name      string            // repo-relative path of the .unit file
	unitFiles map[string]string // file name -> unit text
	sources   link.Sources
	roots     []string // buildable top-level units; empty = parse-only
}

// discoverUnitFixtures walks the given directories for .unit files.
func discoverUnitFixtures(t *testing.T, dirs ...string) []unitFixture {
	t.Helper()
	var fixtures []unitFixture
	for _, dir := range dirs {
		err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil || d.IsDir() || !strings.HasSuffix(d.Name(), ".unit") {
				return err
			}
			fixtures = append(fixtures, loadUnitFixture(t, path))
			return nil
		})
		if err != nil {
			t.Fatalf("walking %s: %v", dir, err)
		}
	}
	sort.Slice(fixtures, func(i, j int) bool { return fixtures[i].name < fixtures[j].name })
	if len(fixtures) == 0 {
		t.Fatal("no .unit fixtures discovered")
	}
	return fixtures
}

func loadUnitFixture(t *testing.T, path string) unitFixture {
	t.Helper()
	text, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fx := unitFixture{
		name:      filepath.ToSlash(path),
		unitFiles: map[string]string{filepath.Base(path): string(text)},
		sources:   link.Sources{},
	}
	// Sibling .c and .s files form the virtual source filesystem, keyed
	// by base name as units reference them.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".c") || strings.HasSuffix(e.Name(), ".s") {
			src, err := os.ReadFile(filepath.Join(filepath.Dir(path), e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			fx.sources[e.Name()] = string(src)
		}
	}
	fx.roots = rootUnits(t, path, string(text))
	return fx
}

// rootUnits parses a unit file and returns the units that are buildable
// tops on their own: units with no imports that are never instantiated
// by another unit in the file. Files whose units all import from
// elsewhere (dynamic modules) have no roots and are covered parse-only.
func rootUnits(t *testing.T, path, text string) []string {
	t.Helper()
	f, err := lang.Parse(filepath.Base(path), text)
	if err != nil {
		t.Fatalf("%s: %v", path, err)
	}
	linked := map[string]bool{}
	for _, u := range f.Units {
		for _, l := range u.Links {
			linked[l.Unit] = true
		}
	}
	var roots []string
	for _, u := range f.Units {
		if len(u.Imports) == 0 && !linked[u.Name] && (u.IsCompound() || len(u.Files) > 0) {
			roots = append(roots, u.Name)
		}
	}
	return roots
}

// buildVariants runs the plain, cold-cached, warm-cached, and parallel
// builds of one configuration and asserts they are equivalent. The base
// options must not set Cache or Parallelism.
func buildVariants(t *testing.T, base build.Options) {
	t.Helper()
	doBuild := func(label string, tune func(*build.Options)) *build.Result {
		opts := base
		if tune != nil {
			tune(&opts)
		}
		res, err := build.Build(opts)
		if err != nil {
			t.Fatalf("%s build: %v", label, err)
		}
		return res
	}

	plain := doBuild("plain", nil)
	cache := build.NewCache()
	cold := doBuild("cold", func(o *build.Options) { o.Cache = cache; o.Parallelism = 1 })
	warm := doBuild("warm", func(o *build.Options) { o.Cache = cache; o.Parallelism = 1 })
	par := doBuild("parallel", func(o *build.Options) { o.Parallelism = 8 })

	if cold.Timings.CacheHits != 0 {
		t.Errorf("cold build reported %d cache hits, want 0", cold.Timings.CacheHits)
	}
	if warm.Timings.CacheHits != warm.Timings.CompileJobs {
		t.Errorf("warm build hit %d of %d compile jobs, want all",
			warm.Timings.CacheHits, warm.Timings.CompileJobs)
	}

	want := asm.Format(plain.Object)
	for _, v := range []struct {
		label string
		res   *build.Result
	}{{"cold", cold}, {"warm", warm}, {"parallel", par}} {
		if got := asm.Format(v.res.Object); got != want {
			t.Errorf("%s build object differs from plain build", v.label)
		}
		assertImagesEqual(t, v.label, plain, v.res)
		if !reflect.DeepEqual(v.res.Schedule.Inits, plain.Schedule.Inits) {
			t.Errorf("%s build init schedule %v, want %v",
				v.label, v.res.Schedule.Inits, plain.Schedule.Inits)
		}
		if !reflect.DeepEqual(v.res.Schedule.Fins, plain.Schedule.Fins) {
			t.Errorf("%s build finalize schedule %v, want %v",
				v.label, v.res.Schedule.Fins, plain.Schedule.Fins)
		}
	}
}

func assertImagesEqual(t *testing.T, label string, want, got *build.Result) {
	t.Helper()
	if got.Image.TextSize != want.Image.TextSize {
		t.Errorf("%s build text size %d, want %d", label, got.Image.TextSize, want.Image.TextSize)
	}
	if got.Image.DataWords != want.Image.DataWords {
		t.Errorf("%s build data words %d, want %d", label, got.Image.DataWords, want.Image.DataWords)
	}
	if !reflect.DeepEqual(got.Image.FuncAddr, want.Image.FuncAddr) {
		t.Errorf("%s build function layout differs", label)
	}
	if !reflect.DeepEqual(got.Image.GlobalAddr, want.Image.GlobalAddr) {
		t.Errorf("%s build global layout differs", label)
	}
}

// TestDifferentialUnitFiles covers every .unit file under examples/ and
// cmd/knit/testdata/: each buildable root is built plain, cold, warm,
// and parallel, in both separate-compilation and flattened form.
func TestDifferentialUnitFiles(t *testing.T) {
	for _, fx := range discoverUnitFixtures(t, "examples", filepath.Join("cmd", "knit", "testdata")) {
		fx := fx
		t.Run(fx.name, func(t *testing.T) {
			if len(fx.roots) == 0 {
				// Dynamic-module files import from a host configuration
				// and cannot elaborate standalone; the parse in
				// rootUnits already validated their syntax.
				t.Logf("no standalone roots; parse-only coverage")
				return
			}
			for _, root := range fx.roots {
				root := root
				t.Run(root, func(t *testing.T) {
					buildVariants(t, build.Options{
						Top:       root,
						UnitFiles: fx.unitFiles,
						Sources:   fx.sources,
					})
				})
				t.Run(root+"/flattened", func(t *testing.T) {
					buildVariants(t, build.Options{
						Top:       root,
						UnitFiles: fx.unitFiles,
						Sources:   fx.sources,
						Optimize:  true,
						Flatten:   true,
					})
				})
			}
		})
	}
}

// TestDifferentialClackRouter covers the generated Clack router — the
// largest configuration in the repo — in its modular and flattened
// variants.
func TestDifferentialClackRouter(t *testing.T) {
	for _, v := range []clack.Variant{{}, {Flattened: true}} {
		v := v
		t.Run(v.String(), func(t *testing.T) {
			buildRouter := func(label string, tune func(*build.Options)) *build.Result {
				res, err := clack.BuildRouterTuned(v, tune)
				if err != nil {
					t.Fatalf("%s build: %v", label, err)
				}
				return res
			}
			plain := buildRouter("plain", nil)
			cache := build.NewCache()
			cold := buildRouter("cold", func(o *build.Options) { o.Cache = cache; o.Parallelism = 1 })
			warm := buildRouter("warm", func(o *build.Options) { o.Cache = cache; o.Parallelism = 1 })
			par := buildRouter("parallel", func(o *build.Options) { o.Parallelism = 8 })

			if warm.Timings.CacheHits != warm.Timings.CompileJobs {
				t.Errorf("warm router build hit %d of %d compile jobs, want all",
					warm.Timings.CacheHits, warm.Timings.CompileJobs)
			}
			want := asm.Format(plain.Object)
			for _, r := range []struct {
				label string
				res   *build.Result
			}{{"cold", cold}, {"warm", warm}, {"parallel", par}} {
				if got := asm.Format(r.res.Object); got != want {
					t.Errorf("%s router build object differs from plain build", r.label)
				}
				assertImagesEqual(t, r.label, plain, r.res)
			}
		})
	}
}

// TestDifferentialOskitKernel covers the OSKit-style kernel builds.
func TestDifferentialOskitKernel(t *testing.T) {
	for _, top := range []string{"FsKernel", "BigKernel"} {
		top := top
		t.Run(top, func(t *testing.T) {
			doBuild := func(label string, tune func(*build.Options)) *build.Result {
				opts := build.Options{Optimize: true}
				if tune != nil {
					tune(&opts)
				}
				res, err := oskit.BuildKernel(top, opts)
				if err != nil {
					t.Fatalf("%s build: %v", label, err)
				}
				return res
			}
			plain := doBuild("plain", nil)
			cache := build.NewCache()
			cold := doBuild("cold", func(o *build.Options) { o.Cache = cache; o.Parallelism = 1 })
			warm := doBuild("warm", func(o *build.Options) { o.Cache = cache; o.Parallelism = 1 })
			par := doBuild("parallel", func(o *build.Options) { o.Parallelism = 8 })

			if warm.Timings.CacheHits != warm.Timings.CompileJobs {
				t.Errorf("warm kernel build hit %d of %d compile jobs, want all",
					warm.Timings.CacheHits, warm.Timings.CompileJobs)
			}
			want := asm.Format(plain.Object)
			for _, r := range []struct {
				label string
				res   *build.Result
			}{{"cold", cold}, {"warm", warm}, {"parallel", par}} {
				if got := asm.Format(r.res.Object); got != want {
					t.Errorf("%s kernel build object differs from plain build", r.label)
				}
				assertImagesEqual(t, r.label, plain, r.res)
				if !reflect.DeepEqual(r.res.Schedule.Inits, plain.Schedule.Inits) {
					t.Errorf("%s kernel init schedule differs", r.label)
				}
			}
		})
	}
}
